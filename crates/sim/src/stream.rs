//! CUDA-stream–style asynchronous queues in modeled time.
//!
//! The base simulator ([`crate::grid::Gpu`]) executes one synchronous
//! queue: every kernel and transfer lands back-to-back on one timeline.
//! Real FZ-GPU deployments saturate the device by running several streams,
//! overlapping the H2D copy of request *k+1* with the kernels of request
//! *k*. [`StreamSim`] reproduces that schedule in *modeled* time: callers
//! execute work bit-exactly however they like (typically through a `Gpu`),
//! then enqueue the resulting durations onto per-stream timelines, and the
//! scheduler assigns start times under the device's engine constraints:
//!
//! * operations on one stream are ordered (CUDA stream semantics);
//! * all kernels share a single compute engine (concurrent kernels from
//!   different streams serialize — conservative for the streaming,
//!   bandwidth-saturating kernels of this codebase);
//! * copies grab one of [`crate::device::DeviceSpec::copy_engines`] DMA
//!   engines, so up to that many transfers overlap compute and each other;
//! * [`StreamSim::record_event`] / [`StreamSim::wait_event`] add
//!   cross-stream edges (`cudaEventRecord` / `cudaStreamWaitEvent`).
//!
//! Scheduling is greedy in enqueue order — exactly the order the host
//! issued the work, which is how the CUDA driver dispatches — and is a
//! pure function of the enqueue sequence, so modeled makespans are
//! bit-identical at any host thread count.

use fzgpu_trace::chrome::ChromeTrace;
use fzgpu_trace::json;

use crate::device::DeviceSpec;
use crate::grid::Event;

/// Engine class an operation occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// Kernel launch: occupies the (single) compute engine.
    Compute,
    /// Host-to-device copy: occupies one DMA engine.
    CopyH2D,
    /// Device-to-host copy: occupies one DMA engine.
    CopyD2H,
    /// Stall: freezes the stream's queue for the duration without
    /// occupying any engine (injected faults, device-loss aborts).
    Stall,
}

impl OpClass {
    /// Short label for traces and reports.
    pub fn label(&self) -> &'static str {
        match self {
            OpClass::Compute => "compute",
            OpClass::CopyH2D => "H2D",
            OpClass::CopyD2H => "D2H",
            OpClass::Stall => "stall",
        }
    }
}

/// A scheduled operation: where it ran and when.
#[derive(Debug, Clone)]
pub struct StreamOp {
    /// Display name.
    pub name: String,
    /// Stream it was enqueued on.
    pub stream: usize,
    /// Engine class.
    pub class: OpClass,
    /// Engine index within the class (always 0 for compute).
    pub engine: usize,
    /// Modeled start time, seconds.
    pub start: f64,
    /// Modeled duration, seconds.
    pub duration: f64,
}

impl StreamOp {
    /// Completion time, seconds.
    pub fn end(&self) -> f64 {
        self.start + self.duration
    }
}

/// Handle of a recorded cross-stream event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventId(usize);

/// Opaque checkpoint of a [`StreamSim`]'s scheduling state (see
/// [`StreamSim::mark`] / [`StreamSim::rollback`]).
#[derive(Debug, Clone)]
pub struct StreamMark {
    compute_ready: f64,
    copy_ready: Vec<f64>,
    stream_ready: Vec<f64>,
    ops: usize,
    events: usize,
}

/// Modeled multi-stream scheduler for one device (see the module docs).
pub struct StreamSim {
    copy_engines: usize,
    /// When the compute engine frees up.
    compute_ready: f64,
    /// When each DMA engine frees up.
    copy_ready: Vec<f64>,
    /// When each stream's last enqueued op completes.
    stream_ready: Vec<f64>,
    /// Completion times captured by `record_event`.
    events: Vec<f64>,
    ops: Vec<StreamOp>,
    device: &'static str,
}

impl StreamSim {
    /// New scheduler with `n_streams` streams on `spec`'s engine budget.
    ///
    /// # Panics
    /// Panics when `n_streams` is zero.
    pub fn new(spec: &DeviceSpec, n_streams: usize) -> Self {
        assert!(n_streams > 0, "need at least one stream");
        Self {
            copy_engines: spec.copy_engines.max(1) as usize,
            compute_ready: 0.0,
            copy_ready: vec![0.0; spec.copy_engines.max(1) as usize],
            stream_ready: vec![0.0; n_streams],
            events: Vec::new(),
            ops: Vec::new(),
            device: spec.name,
        }
    }

    /// Number of streams.
    pub fn n_streams(&self) -> usize {
        self.stream_ready.len()
    }

    /// Number of DMA engines bounding copy overlap.
    pub fn copy_engines(&self) -> usize {
        self.copy_engines
    }

    /// Enqueue one operation on `stream`, starting no earlier than
    /// `earliest` (modeled seconds; pass 0.0 for "as soon as possible").
    /// Returns its completion time.
    ///
    /// # Panics
    /// Panics on an out-of-range stream index or a negative duration.
    pub fn enqueue(
        &mut self,
        stream: usize,
        class: OpClass,
        name: &str,
        duration: f64,
        earliest: f64,
    ) -> f64 {
        assert!(stream < self.stream_ready.len(), "stream {stream} out of range");
        assert!(duration >= 0.0, "negative duration");
        let mut start = self.stream_ready[stream].max(earliest);
        let engine = match class {
            OpClass::Compute => {
                start = start.max(self.compute_ready);
                0
            }
            // A stall blocks only its own stream's queue.
            OpClass::Stall => 0,
            OpClass::CopyH2D | OpClass::CopyD2H => {
                // Earliest-free DMA engine, lowest index on ties — a pure
                // function of the enqueue order.
                let (engine, ready) = self
                    .copy_ready
                    .iter()
                    .copied()
                    .enumerate()
                    .reduce(|a, b| if b.1 < a.1 { b } else { a })
                    .expect("at least one copy engine");
                start = start.max(ready);
                engine
            }
        };
        let end = start + duration;
        match class {
            OpClass::Compute => self.compute_ready = end,
            OpClass::CopyH2D | OpClass::CopyD2H => self.copy_ready[engine] = end,
            OpClass::Stall => {}
        }
        self.stream_ready[stream] = end;
        self.ops.push(StreamOp { name: name.to_string(), stream, class, engine, start, duration });
        end
    }

    /// Map a [`Gpu`](crate::grid::Gpu) timeline onto `stream`: transfers
    /// become DMA operations, kernels become compute operations, all
    /// prefixed with `label`. Returns the completion time of the last
    /// mapped operation (or `earliest` for an empty timeline).
    pub fn enqueue_timeline(
        &mut self,
        stream: usize,
        label: &str,
        timeline: &[Event],
        earliest: f64,
    ) -> f64 {
        let mut end = self.stream_ready[stream].max(earliest);
        for e in timeline {
            let (class, name) = match e {
                Event::Kernel(k) => (OpClass::Compute, format!("{label}{}", k.name)),
                Event::Transfer(t) => (
                    if t.direction == "H2D" { OpClass::CopyH2D } else { OpClass::CopyD2H },
                    format!("{label}{}", t.direction),
                ),
            };
            end = self.enqueue(stream, class, &name, e.time(), earliest);
        }
        end
    }

    /// Record an event capturing the completion of everything enqueued on
    /// `stream` so far (`cudaEventRecord`).
    pub fn record_event(&mut self, stream: usize) -> EventId {
        self.events.push(self.stream_ready[stream]);
        EventId(self.events.len() - 1)
    }

    /// Make every later operation on `stream` wait for `event`
    /// (`cudaStreamWaitEvent`).
    pub fn wait_event(&mut self, stream: usize, event: EventId) {
        let t = self.events[event.0];
        if t > self.stream_ready[stream] {
            self.stream_ready[stream] = t;
        }
    }

    /// Completion time of everything enqueued so far (`cudaDeviceSynchronize`).
    pub fn makespan(&self) -> f64 {
        self.stream_ready.iter().copied().fold(0.0, f64::max)
    }

    /// When `stream`'s queue drains.
    pub fn stream_ready(&self, stream: usize) -> f64 {
        self.stream_ready[stream]
    }

    /// The stream whose queue drains first (lowest index on ties) and when.
    pub fn earliest_stream(&self) -> (usize, f64) {
        self.stream_ready
            .iter()
            .copied()
            .enumerate()
            .reduce(|a, b| if b.1 < a.1 { b } else { a })
            .expect("at least one stream")
    }

    /// Sum of all enqueued *work* durations (stalls excluded — a stall is
    /// lost time, not work) — what a single synchronous queue would take.
    /// Without injected stalls `makespan() <= serial_time()`; the gap is
    /// the overlap the streams bought.
    pub fn serial_time(&self) -> f64 {
        self.ops.iter().filter(|o| o.class != OpClass::Stall).map(|o| o.duration).sum()
    }

    /// Checkpoint the scheduler state. Pair with [`StreamSim::rollback`] to
    /// un-enqueue speculatively scheduled work (a batch aborted by a
    /// device-loss event is scheduled, observed to cross the loss time,
    /// then rolled back and replaced by the abort stall).
    pub fn mark(&self) -> StreamMark {
        StreamMark {
            compute_ready: self.compute_ready,
            copy_ready: self.copy_ready.clone(),
            stream_ready: self.stream_ready.clone(),
            ops: self.ops.len(),
            events: self.events.len(),
        }
    }

    /// Restore the state captured by [`StreamSim::mark`], discarding every
    /// operation and event enqueued since.
    ///
    /// # Panics
    /// Panics when `mark` came from a differently-shaped scheduler.
    pub fn rollback(&mut self, mark: &StreamMark) {
        assert_eq!(mark.stream_ready.len(), self.stream_ready.len(), "foreign mark");
        assert!(mark.ops <= self.ops.len(), "mark is newer than the schedule");
        self.compute_ready = mark.compute_ready;
        self.copy_ready.clone_from(&mark.copy_ready);
        self.stream_ready.clone_from(&mark.stream_ready);
        self.ops.truncate(mark.ops);
        self.events.truncate(mark.events);
    }

    /// Busy fraction of the compute engine over the makespan (0 when
    /// nothing ran).
    pub fn compute_utilization(&self) -> f64 {
        let total = self.makespan();
        if total <= 0.0 {
            return 0.0;
        }
        let busy: f64 =
            self.ops.iter().filter(|o| o.class == OpClass::Compute).map(|o| o.duration).sum();
        busy / total
    }

    /// Every scheduled operation, in enqueue order.
    pub fn ops(&self) -> &[StreamOp] {
        &self.ops
    }

    /// The telemetry clock hook: busy seconds of `class` per time window of
    /// `width` modeled seconds, as sparse `(window, busy)` pairs in window
    /// order. Each op's `[start, end)` interval is split across the window
    /// boundaries it crosses; accumulation runs in enqueue order, so the
    /// result is a pure function of the schedule (bit-identical at any host
    /// thread count and on either engine).
    ///
    /// # Panics
    /// Panics when `width` is not positive.
    pub fn busy_by_window(&self, class: OpClass, width: f64) -> Vec<(u64, f64)> {
        assert!(width > 0.0, "window width must be positive");
        let mut acc: std::collections::BTreeMap<u64, f64> = std::collections::BTreeMap::new();
        for op in self.ops.iter().filter(|o| o.class == class && o.duration > 0.0) {
            let mut t = op.start;
            let end = op.end();
            while t < end {
                let w = (t / width).floor() as u64;
                let boundary = (w + 1) as f64 * width;
                let slice_end = boundary.min(end);
                if slice_end <= t {
                    // FP guard: a boundary that rounds onto `t` would not
                    // advance; charge the remainder to this window.
                    *acc.entry(w).or_insert(0.0) += end - t;
                    break;
                }
                *acc.entry(w).or_insert(0.0) += slice_end - t;
                t = slice_end;
            }
        }
        acc.into_iter().collect()
    }

    /// Append this schedule to a Chrome-trace builder under `pid`, one
    /// track (tid) per stream — the per-stream view of the overlap.
    pub fn write_chrome_tracks(&self, t: &mut ChromeTrace, pid: u32) {
        for s in 0..self.stream_ready.len() {
            t.thread_name(pid, s as u32, &format!("stream {s}"));
        }
        for op in &self.ops {
            let args = vec![
                ("engine", format!("\"{}{}\"", op.class.label(), op.engine)),
                ("stream", op.stream.to_string()),
            ];
            t.complete(
                pid,
                op.stream as u32,
                &op.name,
                op.class.label(),
                op.start * 1e6,
                op.duration * 1e6,
                &args,
            );
        }
    }

    /// Standalone Chrome-trace JSON of the schedule (per-stream tracks).
    pub fn chrome_trace_json(&self) -> String {
        let mut t = ChromeTrace::new();
        t.process_name(0, "modeled device streams (analytic clock)");
        self.write_chrome_tracks(&mut t, 0);
        t.finish(&[
            ("device", json::escape(self.device)),
            ("copy_engines", self.copy_engines.to_string()),
            ("streams", self.stream_ready.len().to_string()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{A100, A4000};

    /// One request's modeled phases: upload, kernel, download.
    fn enqueue_job(sim: &mut StreamSim, stream: usize, tag: &str) -> f64 {
        sim.enqueue(stream, OpClass::CopyH2D, &format!("{tag}.h2d"), 10e-6, 0.0);
        sim.enqueue(stream, OpClass::Compute, &format!("{tag}.kernel"), 20e-6, 0.0);
        sim.enqueue(stream, OpClass::CopyD2H, &format!("{tag}.d2h"), 10e-6, 0.0)
    }

    #[test]
    fn single_stream_is_serial() {
        let mut sim = StreamSim::new(&A100, 1);
        enqueue_job(&mut sim, 0, "a");
        enqueue_job(&mut sim, 0, "b");
        assert!((sim.makespan() - sim.serial_time()).abs() < 1e-15);
        assert!((sim.makespan() - 80e-6).abs() < 1e-12);
    }

    #[test]
    fn two_streams_overlap_copy_with_compute() {
        let mut sim = StreamSim::new(&A100, 2);
        enqueue_job(&mut sim, 0, "a");
        enqueue_job(&mut sim, 1, "b");
        // b.h2d runs during a.kernel; b.kernel starts when a.kernel ends.
        // Timeline: a.h2d [0,10], a.kernel [10,30], b.h2d [0,10] on a
        // second DMA engine, b.kernel [30,50], d2h tails overlap.
        assert!(sim.makespan() < sim.serial_time(), "streams must overlap");
        assert!((sim.makespan() - 60e-6).abs() < 1e-12, "{}", sim.makespan());
    }

    #[test]
    fn one_copy_engine_serializes_transfers() {
        let mut spec = A4000;
        spec.copy_engines = 1;
        let mut sim = StreamSim::new(&spec, 2);
        sim.enqueue(0, OpClass::CopyH2D, "a.h2d", 10e-6, 0.0);
        sim.enqueue(1, OpClass::CopyH2D, "b.h2d", 10e-6, 0.0);
        // Both want the only DMA engine: b starts when a finishes.
        let b = &sim.ops()[1];
        assert!((b.start - 10e-6).abs() < 1e-15);
        // With two engines they would overlap.
        let mut sim2 = StreamSim::new(&A4000, 2);
        sim2.enqueue(0, OpClass::CopyH2D, "a.h2d", 10e-6, 0.0);
        sim2.enqueue(1, OpClass::CopyH2D, "b.h2d", 10e-6, 0.0);
        assert_eq!(sim2.ops()[1].start, 0.0);
        assert_eq!(sim2.ops()[1].engine, 1);
    }

    #[test]
    fn stream_ops_stay_ordered() {
        let mut sim = StreamSim::new(&A100, 2);
        sim.enqueue(0, OpClass::Compute, "k1", 5e-6, 0.0);
        sim.enqueue(0, OpClass::CopyD2H, "d", 5e-6, 0.0);
        let ops = sim.ops();
        assert!(ops[1].start >= ops[0].end(), "same-stream ops must not overlap");
    }

    #[test]
    fn wait_event_orders_across_streams() {
        let mut sim = StreamSim::new(&A100, 2);
        sim.enqueue(0, OpClass::Compute, "producer", 50e-6, 0.0);
        let ev = sim.record_event(0);
        sim.wait_event(1, ev);
        sim.enqueue(1, OpClass::CopyD2H, "consumer", 5e-6, 0.0);
        let consumer = sim.ops().last().unwrap();
        assert!(consumer.start >= 50e-6 - 1e-15, "consumer started at {}", consumer.start);
    }

    #[test]
    fn earliest_constraint_delays_start() {
        let mut sim = StreamSim::new(&A100, 1);
        sim.enqueue(0, OpClass::Compute, "late", 1e-6, 42e-6);
        assert!((sim.ops()[0].start - 42e-6).abs() < 1e-15);
    }

    #[test]
    fn enqueue_timeline_maps_events() {
        use crate::perf::{KernelRecord, KernelStats, TimeBreakdown, TransferRecord};
        let timeline = vec![
            Event::Transfer(TransferRecord { direction: "H2D", bytes: 64, time: 1e-6 }),
            Event::Kernel(KernelRecord {
                name: "k".into(),
                time: 2e-6,
                stats: KernelStats::default(),
                breakdown: TimeBreakdown::analytic(2e-6),
                retries: 0,
                retry_attempt: None,
            }),
            Event::Transfer(TransferRecord { direction: "D2H", bytes: 64, time: 1e-6 }),
        ];
        let mut sim = StreamSim::new(&A100, 1);
        let end = sim.enqueue_timeline(0, "job0.", &timeline, 0.0);
        assert!((end - 4e-6).abs() < 1e-15);
        let classes: Vec<OpClass> = sim.ops().iter().map(|o| o.class).collect();
        assert_eq!(classes, vec![OpClass::CopyH2D, OpClass::Compute, OpClass::CopyD2H]);
        assert_eq!(sim.ops()[1].name, "job0.k");
    }

    #[test]
    fn chrome_trace_has_stream_tracks() {
        use fzgpu_trace::json::{parse, Value};
        let mut sim = StreamSim::new(&A100, 2);
        enqueue_job(&mut sim, 0, "a");
        enqueue_job(&mut sim, 1, "b");
        let doc = parse(&sim.chrome_trace_json()).expect("valid JSON");
        let events = doc.get("traceEvents").and_then(Value::as_array).unwrap();
        let names: Vec<&str> =
            events.iter().filter_map(|e| e.get("name").and_then(Value::as_str)).collect();
        assert!(names.contains(&"a.kernel") && names.contains(&"b.d2h"), "{names:?}");
        // Per-stream tracks arrive as thread_name metadata events.
        let track_names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("name").and_then(Value::as_str) == Some("thread_name"))
            .filter_map(|e| e.get("args").and_then(|a| a.get("name")).and_then(Value::as_str))
            .collect();
        assert!(
            track_names.contains(&"stream 0") && track_names.contains(&"stream 1"),
            "{track_names:?}"
        );
        assert!(doc.get("otherData").and_then(|o| o.get("copy_engines")).is_some());
    }

    #[test]
    fn stalls_freeze_only_their_stream_and_skip_serial_time() {
        let mut sim = StreamSim::new(&A100, 2);
        enqueue_job(&mut sim, 0, "a");
        let before = sim.serial_time();
        sim.enqueue(0, OpClass::Stall, "chaos.stall", 100e-6, 0.0);
        assert_eq!(sim.serial_time(), before, "stalls are lost time, not work");
        // Stream 0's queue is frozen; stream 1 is untouched.
        assert!(sim.stream_ready(0) >= 140e-6 - 1e-15);
        assert_eq!(sim.stream_ready(1), 0.0);
        // Compute/DMA engines were not occupied by the stall: stream 1's
        // job starts immediately.
        sim.enqueue(1, OpClass::Compute, "b.kernel", 5e-6, 0.0);
        let b = sim.ops().last().unwrap();
        assert!((b.start - 30e-6).abs() < 1e-15, "compute engine frees at 30us, got {}", b.start);
    }

    #[test]
    fn rollback_restores_the_schedule_exactly() {
        let mut sim = StreamSim::new(&A100, 2);
        enqueue_job(&mut sim, 0, "a");
        let mark = sim.mark();
        let snapshot: Vec<(f64, f64)> = sim.ops().iter().map(|o| (o.start, o.duration)).collect();
        let (makespan, serial) = (sim.makespan(), sim.serial_time());
        enqueue_job(&mut sim, 1, "speculative");
        sim.record_event(1);
        assert!(sim.ops().len() > snapshot.len());
        sim.rollback(&mark);
        assert_eq!(sim.ops().len(), snapshot.len());
        assert_eq!(sim.makespan(), makespan);
        assert_eq!(sim.serial_time(), serial);
        // Re-enqueueing after a rollback reproduces the identical schedule.
        enqueue_job(&mut sim, 1, "speculative");
        let replay: Vec<(f64, f64)> =
            sim.ops()[snapshot.len()..].iter().map(|o| (o.start, o.duration)).collect();
        sim.rollback(&mark);
        enqueue_job(&mut sim, 1, "speculative");
        let replay2: Vec<(f64, f64)> =
            sim.ops()[snapshot.len()..].iter().map(|o| (o.start, o.duration)).collect();
        assert_eq!(replay, replay2);
    }

    #[test]
    fn busy_by_window_splits_ops_at_boundaries() {
        let mut sim = StreamSim::new(&A100, 1);
        // Kernel [5us, 25us) over 10us windows: 5us in w0, 10 in w1, 5 in w2.
        sim.enqueue(0, OpClass::Compute, "k", 20e-6, 5e-6);
        let busy = sim.busy_by_window(OpClass::Compute, 10e-6);
        assert_eq!(busy.len(), 3);
        assert_eq!(busy[0].0, 0);
        assert!((busy[0].1 - 5e-6).abs() < 1e-18, "{busy:?}");
        assert!((busy[1].1 - 10e-6).abs() < 1e-18, "{busy:?}");
        assert!((busy[2].1 - 5e-6).abs() < 1e-18, "{busy:?}");
        let total: f64 = busy.iter().map(|(_, b)| b).sum();
        assert!((total - 20e-6).abs() < 1e-15, "windows must conserve busy time");
        // Stalls occupy no engine and no window.
        sim.enqueue(0, OpClass::Stall, "s", 50e-6, 0.0);
        assert!(sim.busy_by_window(OpClass::Stall, 10e-6).iter().all(|&(_, b)| b > 0.0));
        assert_eq!(sim.busy_by_window(OpClass::CopyH2D, 10e-6), vec![]);
    }

    #[test]
    fn schedule_is_a_pure_function_of_enqueue_order() {
        let build = || {
            let mut sim = StreamSim::new(&A100, 3);
            for (i, s) in [0usize, 1, 2, 1, 0].iter().enumerate() {
                enqueue_job(&mut sim, *s, &format!("j{i}"));
            }
            sim.ops().iter().map(|o| (o.start, o.engine, o.stream)).collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }
}
