//! Thread-block execution context.
//!
//! A [`BlockCtx`] is handed to the kernel closure once per block. Kernels
//! structure their work as a sequence of warp-parallel phases separated by
//! [`BlockCtx::sync`] barriers — the same shape as a `__syncthreads()`-
//! structured CUDA kernel. Within a phase, [`BlockCtx::warps`] iterates
//! every warp of the block (the simulator executes them sequentially on the
//! host; semantically they are concurrent, which is sound because warp
//! phases in our kernels only communicate across `sync()` boundaries).

use crate::device::{DeviceSpec, WARP_SIZE};
use crate::fault::BlockFault;
use crate::perf::KernelStats;
use crate::pod::Pod;
use crate::shared::Shared;
use crate::warp::WarpCtx;

/// 3-component index, mirroring CUDA's `dim3`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dim3 {
    pub x: u32,
    pub y: u32,
    pub z: u32,
}

impl Dim3 {
    /// Total element count.
    #[inline]
    pub fn count(&self) -> usize {
        self.x as usize * self.y as usize * self.z as usize
    }

    /// Linearize (x fastest, z slowest) — CUDA thread linearization order.
    #[inline]
    pub fn linear_of(&self, x: u32, y: u32, z: u32) -> usize {
        (z as usize * self.y as usize + y as usize) * self.x as usize + x as usize
    }

    /// Inverse of [`Dim3::linear_of`].
    #[inline]
    pub fn delinearize(&self, linear: usize) -> (u32, u32, u32) {
        let x = (linear % self.x as usize) as u32;
        let y = (linear / self.x as usize % self.y as usize) as u32;
        let z = (linear / (self.x as usize * self.y as usize)) as u32;
        (x, y, z)
    }
}

impl From<u32> for Dim3 {
    fn from(x: u32) -> Self {
        Dim3 { x, y: 1, z: 1 }
    }
}

impl From<(u32, u32)> for Dim3 {
    fn from((x, y): (u32, u32)) -> Self {
        Dim3 { x, y, z: 1 }
    }
}

impl From<(u32, u32, u32)> for Dim3 {
    fn from((x, y, z): (u32, u32, u32)) -> Self {
        Dim3 { x, y, z }
    }
}

/// Execution context of one thread block.
pub struct BlockCtx<'g> {
    /// This block's index within the grid.
    pub block_idx: Dim3,
    /// Grid dimensions.
    pub grid_dim: Dim3,
    /// Block dimensions (threads).
    pub block_dim: Dim3,
    pub(crate) spec: &'g DeviceSpec,
    pub(crate) stats: KernelStats,
    pub(crate) shared_bytes: usize,
    /// When `Some`, every global store is logged as `(buffer_id, index)`
    /// for the cross-block write-race detector.
    pub(crate) writes: Option<Vec<(u64, usize)>>,
    /// When `Some`, shared-memory allocations receive injected bit flips
    /// (see [`crate::fault`]).
    pub(crate) fault: Option<BlockFault>,
}

impl<'g> BlockCtx<'g> {
    /// Linear block index within the grid.
    #[inline]
    pub fn block_linear(&self) -> usize {
        self.grid_dim.linear_of(self.block_idx.x, self.block_idx.y, self.block_idx.z)
    }

    /// Threads in this block.
    #[inline]
    pub fn thread_count(&self) -> usize {
        self.block_dim.count()
    }

    /// Warps in this block (ceil of threads/32).
    #[inline]
    pub fn warp_count(&self) -> usize {
        self.thread_count().div_ceil(WARP_SIZE)
    }

    /// Global linear thread id of block-linear-thread `ltid`.
    #[inline]
    pub fn global_tid(&self, ltid: usize) -> usize {
        self.block_linear() * self.thread_count() + ltid
    }

    /// Thread coordinates of block-linear-thread `ltid` (CUDA order:
    /// `threadIdx.x` fastest).
    #[inline]
    pub fn thread_coords(&self, ltid: usize) -> (u32, u32, u32) {
        self.block_dim.delinearize(ltid)
    }

    /// Allocate a shared-memory array, panicking when the block's budget
    /// (per [`DeviceSpec::smem_per_block`]) is exceeded — real kernels fail
    /// to launch in that situation.
    pub fn shared_array<T: Pod>(&mut self, len: usize) -> Shared<T> {
        self.shared_bytes += len * T::BYTES;
        assert!(
            self.shared_bytes <= self.spec.smem_per_block,
            "shared memory over budget: {} > {} bytes on {}",
            self.shared_bytes,
            self.spec.smem_per_block,
            self.spec.name
        );
        self.stats.smem_bytes_peak = self.stats.smem_bytes_peak.max(self.shared_bytes as u64);
        let sh = Shared::new(len);
        if let Some(fault) = &mut self.fault {
            fault.corrupt_shared(&sh);
        }
        sh
    }

    /// Run one warp-parallel phase: `f` executes for every warp.
    pub fn warps(&mut self, mut f: impl FnMut(&mut WarpCtx<'_>)) {
        let threads = self.thread_count();
        let warps = self.warp_count();
        for w in 0..warps {
            let base = w * WARP_SIZE;
            let active = WARP_SIZE.min(threads - base);
            let mut ctx = WarpCtx {
                warp_id: w,
                base_ltid: base,
                active_lanes: active,
                stats: &mut self.stats,
                writes: self.writes.as_mut(),
            };
            f(&mut ctx);
        }
    }

    /// `__syncthreads()` barrier. Phases on either side are ordered.
    pub fn sync(&mut self) {
        self.stats.barriers += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::A100;

    fn block(dim: impl Into<Dim3>) -> BlockCtx<'static> {
        BlockCtx {
            block_idx: 0.into(),
            grid_dim: 1.into(),
            block_dim: dim.into(),
            spec: &A100,
            stats: KernelStats::default(),
            shared_bytes: 0,
            writes: None,
            fault: None,
        }
    }

    #[test]
    fn dim3_linearization_roundtrip() {
        let d = Dim3 { x: 4, y: 3, z: 2 };
        for z in 0..2 {
            for y in 0..3 {
                for x in 0..4 {
                    let l = d.linear_of(x, y, z);
                    assert_eq!(d.delinearize(l), (x, y, z));
                }
            }
        }
        assert_eq!(d.count(), 24);
    }

    #[test]
    fn warp_count_rounds_up() {
        assert_eq!(block(33u32).warp_count(), 2);
        assert_eq!(block(32u32).warp_count(), 1);
        assert_eq!(block((32u32, 32u32)).warp_count(), 32);
    }

    #[test]
    fn warps_iterates_with_partial_last() {
        let mut b = block(40u32);
        let mut seen = Vec::new();
        b.warps(|w| seen.push((w.warp_id, w.active_lanes)));
        assert_eq!(seen, vec![(0, 32), (1, 8)]);
    }

    #[test]
    fn thread_coords_cuda_order() {
        let b = block((8u32, 4u32));
        assert_eq!(b.thread_coords(0), (0, 0, 0));
        assert_eq!(b.thread_coords(9), (1, 1, 0));
    }

    #[test]
    #[should_panic(expected = "shared memory over budget")]
    fn shared_budget_enforced() {
        let mut b = block(32u32);
        let _ = b.shared_array::<u32>(100 * 1024); // 400 KiB > 164 KiB
    }

    #[test]
    fn sync_counts_barriers() {
        let mut b = block(32u32);
        b.sync();
        b.sync();
        assert_eq!(b.stats.barriers, 2);
    }
}
