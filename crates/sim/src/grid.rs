//! Kernel launch, grid scheduling, and the device timeline.
//!
//! [`Gpu`] owns a device spec and a timeline of events (kernel launches and
//! PCIe transfers). [`Gpu::launch`] executes the kernel closure once per
//! block, fanning blocks out across the workspace thread pool
//! (`FZGPU_THREADS` workers; see the `rayon` shim crate) — mirroring their
//! independence on the device — then merges per-block counters and appends
//! a timed [`KernelRecord`] computed by the roofline model.
//!
//! # Determinism contract
//! Host-side parallelism must never show through in results. Per-block
//! state ([`BlockCtx`]) is isolated while blocks run; counters, race logs,
//! and fault draws merge **in block order** afterwards, and per-block
//! fault streams are seeded from `(launch, block)` rather than anything
//! schedule-dependent. Timelines, [`KernelStats`], detected races, and
//! every buffer byte are therefore bit-identical at any `FZGPU_THREADS`
//! value (held by the `parallel_determinism` test suite). The one
//! deliberate exception to parallel execution: with race detection enabled
//! blocks run sequentially, because the buggy kernels that detector exists
//! to catch would otherwise be real host data races (UB), not simulated
//! ones.

use fzgpu_trace::metrics::{self, Class};

use crate::block::{BlockCtx, Dim3};
use crate::device::DeviceSpec;
use crate::engine::Engine;
use crate::fault::{BlockFault, FaultInjector, FaultPlan, RetryPolicy};
use crate::memory::GpuBuffer;
use crate::mempool::MemPool;
use crate::perf::{KernelRecord, KernelStats, TimeBreakdown, TransferRecord};
use crate::pod::Pod;

/// An entry on the device timeline.
#[derive(Debug, Clone)]
pub enum Event {
    /// A kernel launch.
    Kernel(KernelRecord),
    /// A host<->device copy.
    Transfer(TransferRecord),
}

impl Event {
    /// Modeled duration of the event in seconds.
    pub fn time(&self) -> f64 {
        match self {
            Event::Kernel(k) => k.time,
            Event::Transfer(t) => t.time,
        }
    }

    /// Display name (plain kernel name — failed transient-fault retry
    /// records carry their ordinal in
    /// [`KernelRecord::retry_attempt`], rendered lazily by
    /// [`KernelRecord::display_name`]).
    pub fn name(&self) -> &str {
        match self {
            Event::Kernel(k) => &k.name,
            Event::Transfer(t) => t.direction,
        }
    }
}

/// A cross-block write collision found by the race detector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteRace {
    /// Kernel in which the collision occurred.
    pub kernel: String,
    /// Colliding buffer's allocation id.
    pub buffer_id: u64,
    /// Element index written by more than one block.
    pub index: usize,
}

/// A simulated GPU: device spec + event timeline.
pub struct Gpu {
    spec: DeviceSpec,
    timeline: Vec<Event>,
    detect_races: bool,
    races: Vec<WriteRace>,
    fault: Option<FaultInjector>,
    retry_policy: RetryPolicy,
    launch_index: u64,
    total_retries: u64,
    pool: Option<MemPool>,
    charge_alloc: bool,
    engine: Engine,
}

impl Gpu {
    /// Create a device from a spec (see [`crate::device::A100`] /
    /// [`crate::device::A4000`]).
    pub fn new(spec: DeviceSpec) -> Self {
        Self {
            spec,
            timeline: Vec::new(),
            detect_races: false,
            races: Vec::new(),
            fault: None,
            retry_policy: RetryPolicy::default(),
            launch_index: 0,
            total_retries: 0,
            pool: None,
            charge_alloc: false,
            engine: Engine::Interpreted,
        }
    }

    /// Select the simulation engine for subsequent launches (see
    /// [`crate::engine::Engine`]). The analytic engine only changes how
    /// counters are *obtained* (class sampling instead of full
    /// interpretation); timelines and stats stay bit-identical.
    pub fn set_engine(&mut self, engine: Engine) {
        self.engine = engine;
    }

    /// The configured engine.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// The engine launches actually run under: fault injection (with a
    /// non-disabled plan) and race detection force
    /// [`Engine::Interpreted`], because both observe per-block execution
    /// that class sampling skips — the same downgrade stance the native
    /// pipeline path takes for fault plans.
    pub fn effective_engine(&self) -> Engine {
        let faulted = self.fault.as_ref().is_some_and(|inj| !inj.plan().is_disabled());
        if self.detect_races || faulted {
            Engine::Interpreted
        } else {
            self.engine
        }
    }

    /// Attach a [`MemPool`]: subsequent [`Gpu::alloc`] calls are served
    /// from its free lists and [`Gpu::free`] recycles into them. The
    /// handle is shared — clones observe the same free lists and stats.
    /// Pooling never changes buffer contents (recycled buffers come back
    /// zeroed), so results stay bit-identical with or without a pool.
    pub fn set_pool(&mut self, pool: MemPool) {
        self.pool = Some(pool);
    }

    /// Detach the pool (parked buffers stay inside it), returning it.
    pub fn clear_pool(&mut self) -> Option<MemPool> {
        self.pool.take()
    }

    /// The attached pool, if any.
    pub fn pool(&self) -> Option<&MemPool> {
        self.pool.as_ref()
    }

    /// Opt into allocation-cost accounting: each [`Gpu::alloc`] (and
    /// [`Gpu::device_vec`]) appends an analytic record to the timeline —
    /// [`crate::device::DeviceSpec::alloc_overhead`] plus a memset at
    /// effective bandwidth for a fresh allocation, the memset alone for a
    /// pool hit. Off by default so existing pipelines' modeled times are
    /// unchanged; the serving layer turns it on to make malloc pressure
    /// visible.
    pub fn set_charge_alloc(&mut self, on: bool) {
        self.charge_alloc = on;
    }

    /// Install a deterministic fault injector: subsequent uploads receive
    /// bit flips at the plan's global rate, shared-memory allocations at
    /// its shared rate, and launches fail transiently at its probability
    /// (retried under the installed [`RetryPolicy`]). Zero cost when never
    /// called — the hooks are a single `Option` check per launch/upload.
    pub fn enable_faults(&mut self, plan: FaultPlan) {
        self.fault = Some(FaultInjector::new(plan));
    }

    /// Remove the fault injector, returning it (with its tallies) if one
    /// was installed.
    pub fn disable_faults(&mut self) -> Option<FaultInjector> {
        self.fault.take()
    }

    /// The installed fault injector, if any (tallies of injected faults).
    pub fn faults(&self) -> Option<&FaultInjector> {
        self.fault.as_ref()
    }

    /// Set the transient-launch-failure retry policy (see
    /// [`crate::fault::RetryPolicy`]). Policy is inert until a fault plan
    /// with launch faults is installed.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.retry_policy = policy;
    }

    /// The active retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry_policy
    }

    /// Transient launch failures absorbed by retries since construction
    /// (survives [`Gpu::reset_timeline`], unlike the per-record counts).
    pub fn total_retries(&self) -> u64 {
        self.total_retries
    }

    /// Enable the cross-block write-race detector: every subsequent launch
    /// logs each block's global stores and flags elements written by more
    /// than one block — the defined-behaviour boundary of the CUDA memory
    /// contract this simulator adopts (see [`crate::memory`]). Slows
    /// launches down; intended for kernel development and tests.
    pub fn enable_race_detection(&mut self) {
        self.detect_races = true;
    }

    /// Races found since construction (empty when detection is off or the
    /// kernels are clean).
    pub fn races(&self) -> &[WriteRace] {
        &self.races
    }

    /// The device spec.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Allocate a zeroed device buffer (`cudaMalloc` + `cudaMemset`),
    /// served from the attached [`MemPool`] when one is installed. With
    /// allocation accounting on (see [`Gpu::set_charge_alloc`]) the cost
    /// lands on the timeline; by default allocation is free, as it
    /// effectively is for a one-shot pipeline that allocates up front.
    pub fn alloc<T: Pod>(&mut self, len: usize) -> GpuBuffer<T> {
        let (buf, hit) = match &self.pool {
            Some(pool) => pool.acquire::<T>(len),
            None => (GpuBuffer::zeroed(len), false),
        };
        if self.charge_alloc {
            let bytes = (len * T::BYTES) as u64;
            let memset = bytes as f64 / self.spec.effective_bandwidth();
            // One record name for both outcomes so identical jobs keep
            // identical kernel sequences whether they hit the pool or not
            // (the batching fuser matches stages by name); only the charged
            // time differs. Hit/miss observability lives in the pool stats.
            let cost = if hit { memset } else { self.spec.alloc_overhead + memset };
            self.record_kernel("cudaMallocAsync", cost, KernelStats::default());
        }
        buf
    }

    /// Return a buffer to the attached pool for reuse, or just drop it when
    /// no pool is installed (`cudaFree` — modeled as free either way).
    pub fn free<T: Pod>(&mut self, buf: GpuBuffer<T>) {
        match &self.pool {
            Some(pool) => pool.release(buf),
            None => drop(buf),
        }
    }

    /// Materialize host data in a device buffer **without charging a PCIe
    /// transfer** — the modeled equivalent of building a device-side vector
    /// in place (the pack stage reinterprets already-resident words).
    /// Pool-served and alloc-charged exactly like [`Gpu::alloc`]; use
    /// [`Gpu::upload`] when the data genuinely crosses the bus.
    pub fn device_vec<T: Pod>(&mut self, data: &[T]) -> GpuBuffer<T> {
        let mut buf = self.alloc::<T>(data.len());
        buf.copy_from_host(data);
        buf
    }

    /// Copy host data to a fresh device buffer, charging H2D transfer time
    /// at peak PCIe bandwidth.
    pub fn upload<T: Pod>(&mut self, data: &[T]) -> GpuBuffer<T> {
        let bytes = (data.len() * T::BYTES) as u64;
        let _span = fzgpu_trace::span("gpu.upload").field("bytes", bytes);
        let time = bytes as f64 / self.spec.pcie_peak;
        metrics::counter_add(Class::Det, "fzgpu_sim_h2d_bytes_total", &[], bytes);
        metrics::gauge_add(Class::Det, "fzgpu_sim_transfer_seconds_total", &[], time);
        self.timeline.push(Event::Transfer(TransferRecord { direction: "H2D", bytes, time }));
        // The copy's destination buffer comes from the pool when one is
        // attached (the input buffer is usually the largest allocation a
        // pipeline makes). No memset is owed — the copy overwrites it all —
        // so with accounting on, only a fresh allocation costs anything.
        let buf = match &self.pool {
            Some(pool) => {
                let (mut b, hit) = pool.acquire::<T>(data.len());
                if self.charge_alloc {
                    // Same record name on hit and miss (see `alloc`); a hit
                    // costs nothing but still occupies a timeline slot so
                    // per-job kernel sequences stay congruent for batching.
                    let cost = if hit { 0.0 } else { self.spec.alloc_overhead };
                    self.record_kernel("cudaMallocAsync", cost, KernelStats::default());
                }
                b.copy_from_host(data);
                b
            }
            None => {
                if self.charge_alloc {
                    self.record_kernel(
                        "cudaMallocAsync",
                        self.spec.alloc_overhead,
                        KernelStats::default(),
                    );
                }
                GpuBuffer::from_host(data)
            }
        };
        if let Some(injector) = &mut self.fault {
            injector.corrupt_buffer(&buf);
        }
        buf
    }

    /// Copy a device buffer back to the host, charging D2H transfer time.
    pub fn download<T: Pod>(&mut self, buf: &GpuBuffer<T>) -> Vec<T> {
        let bytes = buf.size_bytes() as u64;
        let _span = fzgpu_trace::span("gpu.download").field("bytes", bytes);
        let time = bytes as f64 / self.spec.pcie_peak;
        metrics::counter_add(Class::Det, "fzgpu_sim_d2h_bytes_total", &[], bytes);
        metrics::gauge_add(Class::Det, "fzgpu_sim_transfer_seconds_total", &[], time);
        self.timeline.push(Event::Transfer(TransferRecord { direction: "D2H", bytes, time }));
        buf.to_vec()
    }

    /// Launch a kernel over `grid_dim` blocks of `block_dim` threads.
    ///
    /// The closure runs once per block with a fresh [`BlockCtx`]; blocks
    /// execute in parallel on the host thread pool (sequentially when race
    /// detection is on, or under `FZGPU_THREADS=1`). Per-block counters
    /// merge in block order — results are identical at any thread count
    /// (see the module docs) — and the launch is appended to the timeline
    /// with its modeled time.
    ///
    /// # Panics
    /// Panics when `block_dim` exceeds the device's thread-per-block limit.
    pub fn launch<F>(
        &mut self,
        name: &str,
        grid_dim: impl Into<Dim3>,
        block_dim: impl Into<Dim3>,
        f: F,
    ) where
        F: Fn(&mut BlockCtx<'_>) + Sync,
    {
        let grid_dim = grid_dim.into();
        let block_dim = block_dim.into();
        assert!(
            block_dim.count() <= self.spec.max_threads_per_block as usize,
            "block of {} threads exceeds {} limit on {}",
            block_dim.count(),
            self.spec.max_threads_per_block,
            self.spec.name
        );
        let spec = self.spec;
        let nblocks = grid_dim.count();
        let detect = self.detect_races;

        // Host span for the whole launch (retry loop included) plus the
        // deterministic launch counter. Span time is real wallclock — the
        // cost of *simulating* the kernel — while the timeline record
        // below carries the modeled device time; the unified trace keeps
        // them on separate tracks.
        let _span = fzgpu_trace::span("gpu.launch")
            .field("kernel", name)
            .field("blocks", nblocks)
            .field("block_threads", block_dim.count());
        metrics::counter_add(Class::Det, "fzgpu_sim_kernel_launches_total", &[], 1);

        // Transient launch faults: ask the injector before each attempt and
        // retry under the policy, charging the failed attempt (overhead +
        // exponential backoff) on the timeline as an analytic record. The
        // injector's consecutive-failure cap makes faults transient, so any
        // budget at least that deep always reaches the successful attempt
        // below; past the budget the fault surfaces (panic — the moral
        // equivalent of a sticky `cudaError` in this synchronous API).
        self.launch_index += 1;
        let mut retries = 0u32;
        loop {
            let failed = self.fault.as_mut().is_some_and(FaultInjector::launch_attempt_fails);
            if !failed {
                break;
            }
            assert!(
                retries < self.retry_policy.max_retries,
                "kernel '{name}' launch: transient-fault retry budget ({}) exhausted",
                self.retry_policy.max_retries
            );
            retries += 1;
            self.total_retries += 1;
            fzgpu_trace::event("gpu.retry").field("kernel", name).field("attempt", retries);
            metrics::counter_add(Class::Det, "fzgpu_sim_launch_retries_total", &[], 1);
            let cost = self.spec.launch_overhead + self.retry_policy.backoff_time(retries);
            metrics::gauge_add(Class::Det, "fzgpu_sim_kernel_seconds_total", &[], cost);
            // The failed attempt keeps the plain kernel name; the ordinal
            // rides on `retry_attempt` so the loop never formats a string.
            self.timeline.push(Event::Kernel(KernelRecord {
                name: name.to_string(),
                time: cost,
                stats: KernelStats::default(),
                breakdown: TimeBreakdown::analytic(cost),
                retries: 0,
                retry_attempt: Some(retries),
            }));
        }
        let block_fault =
            self.fault.as_ref().and_then(|inj| inj.block_fault_seed(self.launch_index));

        // Per block: merged counters + (when race detection is on) the
        // (buffer id, element index) log of its global stores.
        type BlockResult = (KernelStats, Option<Vec<(u64, usize)>>);
        let run_block = |linear: usize| -> BlockResult {
            let (x, y, z) = grid_dim.delinearize(linear);
            let mut ctx = BlockCtx {
                block_idx: Dim3 { x, y, z },
                grid_dim,
                block_dim,
                spec: &spec,
                stats: KernelStats::default(),
                shared_bytes: 0,
                writes: detect.then(Vec::new),
                fault: block_fault.map(|(seed, rate)| BlockFault::new(seed, linear, rate)),
            };
            f(&mut ctx);
            (ctx.stats, ctx.writes)
        };
        // Race detection pins execution to one thread: the overlapping
        // stores the detector exists to find would be genuine host data
        // races if the blocks truly ran concurrently. Otherwise blocks fan
        // out coarse-grained: each pool task runs one tight `BlockCtx` loop
        // over a chunk of block indices, rather than paying per-block
        // dispatch through the iterator machinery.
        let results: Vec<BlockResult> = if detect {
            (0..nblocks).map(run_block).collect()
        } else {
            rayon::par_chunk_map(nblocks, run_block)
        };
        let mut stats = KernelStats::default();
        for (s, _) in &results {
            stats.merge(s);
        }
        if detect {
            // An element is racy when written by two *different* blocks
            // within one launch (intra-block rewrites are ordered by the
            // sequential warp execution and are fine). The owner of an
            // element is its first writer in block order; every later write
            // from another block is one detected race. Implemented as a
            // sort over the merged log rather than a hash map — the log's
            // vec index doubles as the global write sequence number, so
            // sorting by (buffer, index, seq) groups collisions while
            // preserving first-writer-wins and the original report order.
            let mut log: Vec<(u64, usize, u32)> = Vec::new();
            for (block, (_, writes)) in results.iter().enumerate() {
                for &(buf, idx) in writes.iter().flatten() {
                    log.push((buf, idx, block as u32));
                }
            }
            let mut order: Vec<u32> = (0..log.len() as u32).collect();
            order.sort_unstable_by_key(|&s| {
                let (buf, idx, _) = log[s as usize];
                (buf, idx, s)
            });
            let mut hits: Vec<u32> = Vec::new();
            let mut g = 0;
            while g < order.len() {
                let (buf, idx, owner) = log[order[g] as usize];
                let mut e = g + 1;
                while e < order.len() {
                    let (b, i, _) = log[order[e] as usize];
                    if (b, i) != (buf, idx) {
                        break;
                    }
                    e += 1;
                }
                hits.extend(order[g..e].iter().copied().filter(|&s| log[s as usize].2 != owner));
                g = e;
            }
            hits.sort_unstable();
            for &s in &hits {
                let (buffer_id, index, _) = log[s as usize];
                self.races.push(WriteRace { kernel: name.to_string(), buffer_id, index });
            }
        }

        self.finish_launch(name, nblocks, block_dim, stats, retries);
    }

    /// Launch a kernel whose per-block counters are constant within
    /// *equivalence classes* of blocks: `class_of(linear)` maps each block
    /// index to a class key, and blocks sharing a key are guaranteed (by
    /// the caller — see DESIGN.md §16 for the per-kernel derivations held
    /// by the `engine_equivalence` suite) to record identical
    /// [`KernelStats`].
    ///
    /// Under the interpreted [`Gpu::effective_engine`] this is exactly
    /// [`Gpu::launch`]. Under the analytic engine, only one representative
    /// block per class executes (sequentially, on the calling thread); its
    /// counters are scaled by the class population and merged, which is
    /// bit-identical to interpreting every block because all event
    /// counters are integers. Callers are then responsible for producing
    /// the launch's output buffers natively — representative blocks do
    /// write their own slice of output, but no other block runs.
    pub fn launch_classed<F, C>(
        &mut self,
        name: &str,
        grid_dim: impl Into<Dim3>,
        block_dim: impl Into<Dim3>,
        class_of: C,
        f: F,
    ) where
        F: Fn(&mut BlockCtx<'_>) + Sync,
        C: Fn(usize) -> u64,
    {
        let grid_dim = grid_dim.into();
        let block_dim = block_dim.into();
        if self.effective_engine() == Engine::Interpreted {
            return self.launch(name, grid_dim, block_dim, f);
        }
        assert!(
            block_dim.count() <= self.spec.max_threads_per_block as usize,
            "block of {} threads exceeds {} limit on {}",
            block_dim.count(),
            self.spec.max_threads_per_block,
            self.spec.name
        );
        let spec = self.spec;
        let nblocks = grid_dim.count();
        let _span = fzgpu_trace::span("gpu.launch")
            .field("kernel", name)
            .field("blocks", nblocks)
            .field("block_threads", block_dim.count());
        metrics::counter_add(Class::Det, "fzgpu_sim_kernel_launches_total", &[], 1);
        self.launch_index += 1;

        // One linear pass tallies class populations and picks the first
        // block of each class as its representative. Kernels have a handful
        // of classes (edge/interior/alignment-residue), so a small vec
        // beats a hash map.
        let mut classes: Vec<(u64, u64, usize)> = Vec::new(); // (key, count, rep)
        for linear in 0..nblocks {
            let key = class_of(linear);
            match classes.iter_mut().find(|(k, _, _)| *k == key) {
                Some((_, count, _)) => *count += 1,
                None => classes.push((key, 1, linear)),
            }
        }
        let mut stats = KernelStats::default();
        for &(_, count, rep) in &classes {
            let (x, y, z) = grid_dim.delinearize(rep);
            let mut ctx = BlockCtx {
                block_idx: Dim3 { x, y, z },
                grid_dim,
                block_dim,
                spec: &spec,
                stats: KernelStats::default(),
                shared_bytes: 0,
                writes: None,
                fault: None,
            };
            f(&mut ctx);
            stats.merge(&ctx.stats.scaled(count));
        }
        self.finish_launch(name, nblocks, block_dim, stats, 0);
    }

    /// Record a launch whose merged counters were computed in closed form
    /// by the caller (the analytic engine's path for data-dependent kernels
    /// like stream compaction, where no block is representative but the
    /// counters are an exact function of the input). Does the full launch
    /// bookkeeping — span, launch counter, occupancy, roofline attribution,
    /// timeline record — identically to [`Gpu::launch`]; no fault attempts
    /// are charged (the analytic engine is never active under a fault plan).
    pub fn launch_analytic(
        &mut self,
        name: &str,
        grid_dim: impl Into<Dim3>,
        block_dim: impl Into<Dim3>,
        stats: KernelStats,
    ) {
        let grid_dim = grid_dim.into();
        let block_dim = block_dim.into();
        assert!(
            block_dim.count() <= self.spec.max_threads_per_block as usize,
            "block of {} threads exceeds {} limit on {}",
            block_dim.count(),
            self.spec.max_threads_per_block,
            self.spec.name
        );
        let nblocks = grid_dim.count();
        let _span = fzgpu_trace::span("gpu.launch")
            .field("kernel", name)
            .field("blocks", nblocks)
            .field("block_threads", block_dim.count());
        metrics::counter_add(Class::Det, "fzgpu_sim_kernel_launches_total", &[], 1);
        self.launch_index += 1;
        self.finish_launch(name, nblocks, block_dim, stats, 0);
    }

    /// Shared launch epilogue: occupancy scaling, roofline attribution, and
    /// the timeline record. Identical for interpreted, class-sampled, and
    /// closed-form launches — the engine axis must not perturb a single bit
    /// of the record.
    fn finish_launch(
        &mut self,
        name: &str,
        nblocks: usize,
        block_dim: Dim3,
        stats: KernelStats,
        retries: u32,
    ) {
        // Occupancy: a grid too small to fill the device cannot reach peak
        // throughput. Empirically ~16 resident warps per SM saturate a
        // streaming kernel; below that, scale the roofline term down.
        let total_warps = nblocks as f64 * block_dim.count().div_ceil(32) as f64;
        let saturating_warps = self.spec.sm_count as f64 * 16.0;
        let occupancy = (total_warps / saturating_warps).min(1.0).max(1.0 / saturating_warps);
        let breakdown = TimeBreakdown::attribute(&self.spec, &stats, occupancy);

        metrics::gauge_add(Class::Det, "fzgpu_sim_kernel_seconds_total", &[], breakdown.total);
        self.timeline.push(Event::Kernel(KernelRecord {
            name: name.to_string(),
            time: breakdown.total,
            stats,
            breakdown,
            retries,
            retry_attempt: None,
        }));
    }

    /// Record a pre-timed kernel on the timeline. Escape hatch for pipeline
    /// stages whose cost is modeled analytically rather than executed
    /// through the simulator (e.g. cuSZ's serial Huffman-codebook build,
    /// MGARD's CPU-side DEFLATE). Callers must document the model used.
    pub fn record_kernel(&mut self, name: &str, time: f64, stats: KernelStats) {
        metrics::gauge_add(Class::Det, "fzgpu_sim_kernel_seconds_total", &[], time);
        self.timeline.push(Event::Kernel(KernelRecord {
            name: name.to_string(),
            time,
            stats,
            breakdown: TimeBreakdown::analytic(time),
            retries: 0,
            retry_attempt: None,
        }));
    }

    /// Single-thread scalar instruction rate (one scheduler's issue rate) —
    /// the speed at which a serial, unparallelizable stage runs on device.
    pub fn scalar_rate(&self) -> f64 {
        self.spec.warp_instr_rate / (self.spec.sm_count as f64 * 4.0)
    }

    /// The event timeline since construction or the last reset.
    pub fn timeline(&self) -> &[Event] {
        &self.timeline
    }

    /// Clear the timeline (e.g. between measured pipelines).
    pub fn reset_timeline(&mut self) {
        self.timeline.clear();
    }

    /// Total modeled kernel time (excludes transfers).
    pub fn kernel_time(&self) -> f64 {
        self.timeline
            .iter()
            .filter_map(|e| match e {
                Event::Kernel(k) => Some(k.time),
                _ => None,
            })
            .sum()
    }

    /// Total modeled time including transfers.
    pub fn total_time(&self) -> f64 {
        self.timeline.iter().map(Event::time).sum()
    }

    /// Render the timeline as an aligned profiling table: per-kernel time,
    /// effective bandwidth, coalescing efficiency, bank-conflict overhead,
    /// and lane utilization — an `nvprof`-style summary for examples and
    /// debugging.
    pub fn report(&self) -> String {
        let mut out = String::from(
            "kernel                          time us   GB/s  coalesce  conflicts  lanes
",
        );
        out.push_str(&"-".repeat(78));
        out.push('\n');
        for e in &self.timeline {
            match e {
                Event::Kernel(k) => {
                    let gbps = if k.time > 0.0 {
                        k.stats.global_bytes_moved() as f64 / k.time / 1e9
                    } else {
                        0.0
                    };
                    out.push_str(&format!(
                        "{:<30} {:>8.2} {:>6.1} {:>8.0}% {:>10} {:>5.0}%
",
                        k.display_name(),
                        k.time * 1e6,
                        gbps,
                        k.stats.coalescing_efficiency() * 100.0,
                        k.stats.smem_conflict_cycles,
                        k.stats.lane_utilization() * 100.0,
                    ));
                }
                Event::Transfer(t) => {
                    out.push_str(&format!(
                        "{:<30} {:>8.2} {:>6.1}
",
                        t.direction,
                        t.time * 1e6,
                        t.bytes as f64 / t.time / 1e9,
                    ));
                }
            }
        }
        out.push_str(&format!(
            "TOTAL kernels: {:.2} us, with transfers: {:.2} us
",
            self.kernel_time() * 1e6,
            self.total_time() * 1e6
        ));
        out
    }

    /// The most recent kernel record.
    ///
    /// # Panics
    /// Panics if no kernel has been launched yet.
    pub fn last_kernel(&self) -> &KernelRecord {
        self.timeline
            .iter()
            .rev()
            .find_map(|e| match e {
                Event::Kernel(k) => Some(k),
                _ => None,
            })
            .expect("no kernel launched")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{A100, A4000};

    #[test]
    fn elementwise_kernel_runs_all_threads() {
        let mut gpu = Gpu::new(A100);
        let n = 4096usize;
        let input = gpu.upload(&(0..n as u32).collect::<Vec<_>>());
        let output: GpuBuffer<u32> = gpu.alloc(n);
        gpu.launch("double", (n as u32 / 256, 1, 1), 256u32, |blk| {
            let base = blk.block_linear() * blk.thread_count();
            blk.warps(|w| {
                let vals = w.load(&input, |l| Some(base + l.ltid));
                w.store(&output, |l| Some((base + l.ltid, vals[l.id] * 2)));
            });
        });
        let out = gpu.download(&output);
        assert!(out.iter().enumerate().all(|(i, &v)| v == 2 * i as u32));
    }

    #[test]
    fn timeline_records_kernels_and_transfers() {
        let mut gpu = Gpu::new(A100);
        let buf = gpu.upload(&[1u32, 2, 3]);
        gpu.launch("noop", 1u32, 32u32, |_| {});
        let _ = gpu.download(&buf);
        let kinds: Vec<&str> = gpu.timeline().iter().map(|e| e.name()).collect();
        assert_eq!(kinds, vec!["H2D", "noop", "D2H"]);
        assert!(gpu.total_time() > gpu.kernel_time());
    }

    #[test]
    fn same_kernel_slower_on_a4000() {
        // A memory-bound kernel must show the bandwidth ratio between GPUs.
        let n = 1 << 20;
        let data: Vec<u32> = (0..n as u32).collect();
        let run = |spec| {
            let mut gpu = Gpu::new(spec);
            let input = GpuBuffer::from_host(&data);
            let output: GpuBuffer<u32> = gpu.alloc(n);
            gpu.launch("copy", (n as u32 / 256, 1, 1), 256u32, |blk| {
                let base = blk.block_linear() * blk.thread_count();
                blk.warps(|w| {
                    let vals = w.load(&input, |l| Some(base + l.ltid));
                    w.store(&output, |l| Some((base + l.ltid, vals[l.id])));
                });
            });
            gpu.kernel_time()
        };
        let t_a100 = run(A100);
        let t_a4000 = run(A4000);
        assert!(t_a4000 > 2.0 * t_a100, "a4000 {t_a4000} vs a100 {t_a100}");
    }

    #[test]
    fn tiny_grid_pays_occupancy_penalty() {
        let mut gpu = Gpu::new(A100);
        let input = GpuBuffer::from_host(&vec![1u32; 64]);
        let out: GpuBuffer<u32> = gpu.alloc(64);
        gpu.launch("tiny", 1u32, 64u32, |blk| {
            blk.warps(|w| {
                let v = w.load(&input, |l| Some(l.ltid));
                w.store(&out, |l| Some((l.ltid, v[l.id])));
            });
        });
        let rec = gpu.last_kernel();
        // Two warps on a 108-SM device: the roofline term is scaled up by
        // the occupancy penalty, so time far exceeds raw traffic/bandwidth.
        let raw = rec.stats.global_bytes_moved() as f64 / A100.effective_bandwidth();
        assert!(rec.time - A100.launch_overhead > 100.0 * raw);
    }

    #[test]
    fn race_detector_flags_cross_block_collision() {
        let mut gpu = Gpu::new(A100);
        gpu.enable_race_detection();
        let out: GpuBuffer<u32> = gpu.alloc(8);
        // Two blocks both write element 0 — a genuine cross-block race.
        gpu.launch("racy", 2u32, 32u32, |blk| {
            let b = blk.block_linear() as u32;
            blk.warps(|w| {
                w.store(&out, |l| (l.id == 0).then_some((0, b)));
            });
        });
        assert!(!gpu.races().is_empty());
        assert_eq!(gpu.races()[0].kernel, "racy");
        assert_eq!(gpu.races()[0].index, 0);
    }

    #[test]
    fn race_dedup_matches_first_writer_semantics() {
        // Micro-assertion for the sort-based dedup: results must match the
        // reference (hash map) rule — owner = first writer in block order,
        // one race per later write from any *other* block, reported in
        // global write order. Four blocks each store element 0 twice (two
        // `store` passes) plus a private element; blocks 1..4 contribute
        // two races each, block 0 (the owner) none.
        let mut gpu = Gpu::new(A100);
        gpu.enable_race_detection();
        let out: GpuBuffer<u32> = gpu.alloc(16);
        gpu.launch("multi", 4u32, 32u32, |blk| {
            let b = blk.block_linear();
            blk.warps(|w| {
                w.store(&out, |l| (l.id == 0).then_some((0, b as u32)));
                w.store(&out, |l| (l.id == 0).then_some((b + 10, 7)));
                w.store(&out, |l| (l.id == 0).then_some((0, b as u32 + 100)));
            });
        });
        let races = gpu.races();
        assert_eq!(races.len(), 6, "{races:?}");
        assert!(races.iter().all(|r| r.kernel == "multi" && r.index == 0));
        // Disjoint per-block elements never appear.
        assert!(races.iter().all(|r| r.index < 10));
    }

    #[test]
    fn race_detector_passes_disjoint_kernels() {
        let mut gpu = Gpu::new(A100);
        gpu.enable_race_detection();
        let out: GpuBuffer<u32> = gpu.alloc(256);
        gpu.launch("clean", 8u32, 32u32, |blk| {
            let base = blk.block_linear() * 32;
            blk.warps(|w| {
                w.store(&out, |l| Some((base + l.id, 1)));
            });
        });
        assert!(gpu.races().is_empty());
    }

    #[test]
    fn report_renders_timeline() {
        let mut gpu = Gpu::new(A100);
        let buf = gpu.upload(&vec![1u32; 1024]);
        let out: GpuBuffer<u32> = gpu.alloc(1024);
        gpu.launch("copy1k", 4u32, 256u32, |blk| {
            let base = blk.block_linear() * 256;
            blk.warps(|w| {
                let v = w.load(&buf, |l| Some(base + l.ltid));
                w.store(&out, |l| Some((base + l.ltid, v[l.id])));
            });
        });
        let rep = gpu.report();
        assert!(rep.contains("copy1k"));
        assert!(rep.contains("H2D"));
        assert!(rep.contains("TOTAL"));
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_block_rejected() {
        let mut gpu = Gpu::new(A100);
        gpu.launch("bad", 1u32, 2048u32, |_| {});
    }

    #[test]
    fn launch_faults_retry_and_record() {
        let mut gpu = Gpu::new(A100);
        // Every attempt fails until the consecutive cap (2) forces success,
        // so each launch costs exactly 2 retries under the default budget (3).
        gpu.enable_faults(FaultPlan::seeded(7).launch_faults(1.0, 2));
        let out: GpuBuffer<u32> = gpu.alloc(32);
        gpu.launch("faulty", 1u32, 32u32, |blk| {
            blk.warps(|w| {
                w.store(&out, |l| Some((l.id, l.id as u32)));
            });
        });
        assert_eq!(gpu.total_retries(), 2);
        // Failed attempts keep the plain name and carry their ordinal as
        // data; the decorated spelling is rendered lazily.
        let shown: Vec<String> = gpu
            .timeline()
            .iter()
            .map(|e| match e {
                Event::Kernel(k) => k.display_name().into_owned(),
                Event::Transfer(t) => t.direction.to_string(),
            })
            .collect();
        assert!(shown[0].contains("transient-fault retry 1"), "{shown:?}");
        assert!(shown[1].contains("transient-fault retry 2"), "{shown:?}");
        assert_eq!(shown[2], "faulty");
        let attempts: Vec<Option<u32>> = gpu
            .timeline()
            .iter()
            .filter_map(|e| match e {
                Event::Kernel(k) => Some(k.retry_attempt),
                Event::Transfer(_) => None,
            })
            .collect();
        assert_eq!(attempts, vec![Some(1), Some(2), None]);
        assert!(gpu.timeline().iter().all(|e| e.name() == "faulty"));
        let rec = gpu.last_kernel();
        assert_eq!(rec.retries, 2);
        // The result is still correct: retries are transparent.
        assert_eq!(gpu.download(&out)[5], 5);
        let inj = gpu.disable_faults().unwrap();
        assert_eq!(inj.launch_faults(), gpu.total_retries());
    }

    #[test]
    #[should_panic(expected = "retry budget")]
    fn launch_fault_budget_exhaustion_panics() {
        let mut gpu = Gpu::new(A100);
        // Faults outlast the policy: 5 consecutive failures vs 3 retries.
        gpu.enable_faults(FaultPlan::seeded(7).launch_faults(1.0, 5));
        gpu.launch("doomed", 1u32, 32u32, |_| {});
    }

    #[test]
    fn upload_corruption_flips_bits() {
        let mut gpu = Gpu::new(A100);
        gpu.enable_faults(FaultPlan::seeded(11).global_bit_flips(1e-3));
        let data = vec![0u32; 1 << 16];
        let buf = gpu.upload(&data);
        let flipped: u32 = gpu.download(&buf).iter().map(|v| v.count_ones()).sum();
        let inj = gpu.faults().unwrap();
        assert_eq!(flipped as u64, inj.bits_flipped());
        assert!(inj.bits_flipped() > 0);
    }

    #[test]
    fn disabled_faults_do_not_perturb_timeline() {
        let run = |plan: Option<FaultPlan>| {
            let mut gpu = Gpu::new(A100);
            if let Some(p) = plan {
                gpu.enable_faults(p);
            }
            let buf = gpu.upload(&vec![3u32; 1024]);
            gpu.launch("clean", 1u32, 256u32, |_| {});
            (gpu.total_time(), gpu.download(&buf))
        };
        let (t0, d0) = run(None);
        let (t1, d1) = run(Some(FaultPlan::disabled()));
        assert_eq!(t0, t1);
        assert_eq!(d0, d1);
    }

    #[test]
    fn pooled_alloc_recycles_and_stays_zeroed() {
        use crate::mempool::MemPool;
        let mut gpu = Gpu::new(A100);
        gpu.set_pool(MemPool::new());
        let buf: GpuBuffer<u32> = gpu.alloc(512);
        gpu.launch("fill", 2u32, 256u32, |blk| {
            let base = blk.block_linear() * 256;
            blk.warps(|w| {
                w.store(&buf, |l| Some((base + l.ltid, 7)));
            });
        });
        gpu.free(buf);
        let again: GpuBuffer<u32> = gpu.alloc(512);
        assert!(again.to_vec().iter().all(|&v| v == 0), "recycled buffer must be zeroed");
        let stats = gpu.pool().unwrap().stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn alloc_charging_is_opt_in_and_pool_hits_are_cheaper() {
        let mut gpu = Gpu::new(A100);
        let _: GpuBuffer<u32> = gpu.alloc(1 << 16);
        assert!(gpu.timeline().is_empty(), "alloc must be free by default");

        gpu.set_pool(crate::mempool::MemPool::new());
        gpu.set_charge_alloc(true);
        let b: GpuBuffer<u32> = gpu.alloc(1 << 16);
        let miss_cost = gpu.total_time();
        assert!(miss_cost >= A100.alloc_overhead);
        gpu.free(b);
        gpu.reset_timeline();
        let _: GpuBuffer<u32> = gpu.alloc(1 << 16);
        let hit_cost = gpu.total_time();
        assert!(
            (miss_cost - hit_cost - A100.alloc_overhead).abs() < 1e-12,
            "a pool hit saves exactly the malloc overhead: miss {miss_cost} hit {hit_cost}"
        );
    }

    #[test]
    fn device_vec_charges_no_transfer() {
        let mut gpu = Gpu::new(A100);
        let data: Vec<u32> = (0..256).collect();
        let buf = gpu.device_vec(&data);
        assert_eq!(buf.to_vec(), data);
        assert!(gpu.timeline().is_empty(), "device_vec must not charge PCIe time");
    }

    #[test]
    fn classed_launch_matches_interpreted_bit_for_bit() {
        // A ragged 1D kernel with two block classes (full interior blocks
        // and the partial last block): the analytic engine samples one
        // representative per class and must reproduce the interpreted
        // timeline record — stats, breakdown, modeled time — exactly.
        let n = 1000usize;
        let nblocks = n.div_ceil(256);
        let run = |engine: Engine| {
            let mut gpu = Gpu::new(A100);
            gpu.set_engine(engine);
            let input = GpuBuffer::from_host(&(0..n as u32).collect::<Vec<_>>());
            let out: GpuBuffer<u32> = gpu.alloc(n);
            gpu.launch_classed(
                "double",
                (nblocks as u32, 1, 1),
                256u32,
                |b| (b == nblocks - 1) as u64,
                |blk| {
                    let base = blk.block_linear() * blk.thread_count();
                    blk.warps(|w| {
                        let v = w.load(&input, |l| {
                            let i = base + l.ltid;
                            (i < n).then_some(i)
                        });
                        w.store(&out, |l| {
                            let i = base + l.ltid;
                            (i < n).then_some((i, v[l.id] * 2))
                        });
                    });
                },
            );
            (format!("{:?}", gpu.timeline()), gpu.kernel_time().to_bits())
        };
        assert_eq!(run(Engine::Interpreted), run(Engine::Analytic));
    }

    #[test]
    fn faults_and_race_detection_force_interpreted_engine() {
        let mut gpu = Gpu::new(A100);
        gpu.set_engine(Engine::Analytic);
        assert_eq!(gpu.effective_engine(), Engine::Analytic);
        gpu.enable_faults(FaultPlan::seeded(1).launch_faults(0.5, 1));
        assert_eq!(gpu.effective_engine(), Engine::Interpreted);
        gpu.enable_faults(FaultPlan::disabled());
        assert_eq!(gpu.effective_engine(), Engine::Analytic, "disabled plans must not downgrade");
        gpu.enable_race_detection();
        assert_eq!(gpu.effective_engine(), Engine::Interpreted);
    }

    #[test]
    fn analytic_record_from_closed_form_stats() {
        // launch_analytic must do the same bookkeeping as launch: same
        // occupancy scaling, same attribution, same record shape.
        let stats = KernelStats {
            global_sectors: 4096,
            global_bytes_requested: 4096 * 32,
            warp_instructions: 2048,
            ..Default::default()
        };
        let mut gpu = Gpu::new(A100);
        gpu.launch_analytic("closed-form", 32u32, 256u32, stats);
        let rec = gpu.last_kernel();
        assert_eq!(rec.stats, stats);
        assert_eq!(rec.retry_attempt, None);
        // Reference: the occupancy formula from finish_launch.
        let total_warps = 32.0 * 8.0;
        let saturating = A100.sm_count as f64 * 16.0;
        let occ = (total_warps / saturating).min(1.0).max(1.0 / saturating);
        let expect = TimeBreakdown::attribute(&A100, &stats, occ);
        assert_eq!(rec.time.to_bits(), expect.total.to_bits());
    }

    #[test]
    fn multiblock_grid_covers_2d_indices() {
        let mut gpu = Gpu::new(A100);
        let out: GpuBuffer<u32> = gpu.alloc(6);
        gpu.launch("mark", (3u32, 2u32), 32u32, |blk| {
            let id = blk.block_linear();
            blk.warps(|w| {
                if w.warp_id == 0 {
                    w.store(&out, |l| if l.id == 0 { Some((id, id as u32 + 1)) } else { None });
                }
            });
        });
        assert_eq!(gpu.download(&out), vec![1, 2, 3, 4, 5, 6]);
    }
}
