//! Warp-synchronous execution context.
//!
//! A [`WarpCtx`] models one 32-lane warp executing in lockstep. Every method
//! is one warp instruction: the simulator evaluates a per-lane closure for
//! all 32 lanes at once, which is exactly the semantics of CUDA warp-level
//! primitives (`__ballot_sync`, `__shfl_sync`, coalesced loads). This makes
//! the paper's ballot-based bitshuffle expressible verbatim while giving the
//! performance model exact per-warp coalescing and bank-conflict data.
//!
//! Per-lane closures receive a [`Lane`] (lane id + the thread's linear id in
//! the block) rather than borrowing the warp context, so address arithmetic
//! never fights the borrow checker.

use crate::device::{SECTOR_BYTES, WARP_SIZE};
use crate::memory::GpuBuffer;
use crate::perf::KernelStats;
use crate::pod::Pod;
use crate::shared::{conflict_cycles, Shared};

/// Identity of one lane during a warp instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lane {
    /// Lane index within the warp, 0..32.
    pub id: usize,
    /// Linear thread id within the block (`base_ltid + id`).
    pub ltid: usize,
}

/// One warp of the currently executing thread block.
pub struct WarpCtx<'a> {
    /// Warp index within the block.
    pub warp_id: usize,
    /// Linear thread id of lane 0 within the block.
    pub base_ltid: usize,
    /// Number of active lanes (the last warp of a block may be partial).
    pub active_lanes: usize,
    pub(crate) stats: &'a mut KernelStats,
    pub(crate) writes: Option<&'a mut Vec<(u64, usize)>>,
}

impl<'a> WarpCtx<'a> {
    #[inline]
    fn lane(&self, id: usize) -> Lane {
        Lane { id, ltid: self.base_ltid + id }
    }

    #[inline]
    fn charge_instruction(&mut self) {
        self.stats.warp_instructions += 1;
        self.stats.inactive_lane_slots += (WARP_SIZE - self.active_lanes) as u64;
    }

    /// Charge `n` warp-wide ALU instructions without evaluating per-lane
    /// closures — for kernels whose arithmetic is computed in bulk on the
    /// host (e.g. a per-lane serial transform loop) but must still be
    /// billed to the device model.
    pub fn charge_alu(&mut self, n: u64) {
        self.stats.warp_instructions += n;
        self.stats.inactive_lane_slots += n * (WARP_SIZE - self.active_lanes) as u64;
    }

    /// Execute one warp-wide ALU instruction: evaluate `f` on every active
    /// lane. Inactive lanes yield `T::default()`.
    pub fn lanes<T: Pod>(&mut self, mut f: impl FnMut(Lane) -> T) -> [T; WARP_SIZE] {
        self.charge_instruction();
        core::array::from_fn(|i| if i < self.active_lanes { f(self.lane(i)) } else { T::default() })
    }

    /// Warp-wide predicated instruction: lanes where `f` returns `None` are
    /// divergent (counted as wasted lane slots) and yield `T::default()`.
    pub fn lanes_pred<T: Pod>(&mut self, mut f: impl FnMut(Lane) -> Option<T>) -> [T; WARP_SIZE] {
        self.stats.warp_instructions += 1;
        let mut inactive = 0u64;
        let out = core::array::from_fn(|i| {
            if i < self.active_lanes {
                match f(self.lane(i)) {
                    Some(v) => v,
                    None => {
                        inactive += 1;
                        T::default()
                    }
                }
            } else {
                inactive += 1;
                T::default()
            }
        });
        self.stats.inactive_lane_slots += inactive;
        out
    }

    /// `__ballot_sync`: build a 32-bit mask where bit `i` is the predicate
    /// of lane `i`. Inactive lanes contribute 0.
    pub fn ballot(&mut self, mut pred: impl FnMut(Lane) -> bool) -> u32 {
        self.charge_instruction();
        let mut mask = 0u32;
        for i in 0..self.active_lanes {
            if pred(self.lane(i)) {
                mask |= 1 << i;
            }
        }
        mask
    }

    /// `__any_sync`: true if any active lane's predicate holds.
    pub fn any(&mut self, pred: impl FnMut(Lane) -> bool) -> bool {
        self.ballot(pred) != 0
    }

    /// `__all_sync`: true if every active lane's predicate holds.
    pub fn all(&mut self, mut pred: impl FnMut(Lane) -> bool) -> bool {
        self.charge_instruction();
        (0..self.active_lanes).all(|i| pred(self.lane(i)))
    }

    /// `__shfl_sync` family: permute a warp-resident register array.
    /// `src(lane)` names the lane whose value lane `lane` receives.
    pub fn shfl<T: Pod>(
        &mut self,
        vals: &[T; WARP_SIZE],
        mut src: impl FnMut(usize) -> usize,
    ) -> [T; WARP_SIZE] {
        self.charge_instruction();
        core::array::from_fn(|i| vals[src(i) % WARP_SIZE])
    }

    /// Warp-level inclusive scan (sum) over a register array, implemented
    /// with the log2(32) shuffle-up pattern and charged accordingly.
    pub fn scan_add(&mut self, vals: &[u32; WARP_SIZE]) -> [u32; WARP_SIZE] {
        let mut acc = *vals;
        let mut d = 1;
        while d < WARP_SIZE {
            self.charge_instruction(); // one shfl_up + add per round
            let prev = acc;
            for i in d..WARP_SIZE {
                acc[i] = prev[i].wrapping_add(prev[i - d]);
            }
            d <<= 1;
        }
        acc
    }

    /// Warp-level reduction (sum), shuffle-based.
    pub fn reduce_add(&mut self, vals: &[u32; WARP_SIZE]) -> u32 {
        let mut acc = *vals;
        let mut d = WARP_SIZE / 2;
        while d > 0 {
            self.charge_instruction();
            for i in 0..WARP_SIZE {
                acc[i] = acc[i].wrapping_add(acc[(i + d) % WARP_SIZE]);
            }
            d >>= 1;
        }
        acc[0]
    }

    // ----- global memory -----

    fn charge_global<T: Pod>(&mut self, addrs: &[usize]) {
        self.stats.warp_instructions += 1;
        self.stats.inactive_lane_slots += (WARP_SIZE - addrs.len()) as u64;
        self.stats.global_bytes_requested += (addrs.len() * T::BYTES) as u64;
        // Distinct 32-byte sectors touched by the warp = transactions.
        let mut sectors: Vec<usize> = Vec::with_capacity(WARP_SIZE * 2);
        for &a in addrs {
            let first = a * T::BYTES / SECTOR_BYTES;
            let last = (a * T::BYTES + T::BYTES - 1) / SECTOR_BYTES;
            for s in first..=last {
                if !sectors.contains(&s) {
                    sectors.push(s);
                }
            }
        }
        self.stats.global_sectors += sectors.len() as u64;
    }

    /// Coalesced-analyzed global load: `addr(lane)` gives each active lane's
    /// element index (or `None` for a predicated-off lane).
    pub fn load<T: Pod>(
        &mut self,
        buf: &GpuBuffer<T>,
        mut addr: impl FnMut(Lane) -> Option<usize>,
    ) -> [T; WARP_SIZE] {
        let mut addrs: Vec<usize> = Vec::with_capacity(WARP_SIZE);
        let out = core::array::from_fn(|i| {
            if i < self.active_lanes {
                if let Some(a) = addr(self.lane(i)) {
                    addrs.push(a);
                    return buf.read(a);
                }
            }
            T::default()
        });
        self.charge_global::<T>(&addrs);
        out
    }

    /// Coalesced-analyzed global store.
    pub fn store<T: Pod>(
        &mut self,
        buf: &GpuBuffer<T>,
        mut val: impl FnMut(Lane) -> Option<(usize, T)>,
    ) {
        let mut addrs: Vec<usize> = Vec::with_capacity(WARP_SIZE);
        for i in 0..self.active_lanes {
            if let Some((a, v)) = val(self.lane(i)) {
                buf.write(a, v);
                addrs.push(a);
            }
        }
        if let Some(log) = self.writes.as_deref_mut() {
            log.extend(addrs.iter().map(|&a| (buf.id(), a)));
        }
        self.charge_global::<T>(&addrs);
    }

    // ----- shared memory -----

    fn charge_shared<T: Pod>(&mut self, indices: &[usize]) {
        self.stats.warp_instructions += 1;
        self.stats.inactive_lane_slots += (WARP_SIZE - indices.len()) as u64;
        self.stats.smem_accesses += 1;
        let (_, extra) = conflict_cycles::<T>(indices);
        self.stats.smem_conflict_cycles += extra;
    }

    /// Shared-memory load with bank-conflict accounting.
    pub fn sh_load<T: Pod>(
        &mut self,
        sh: &Shared<T>,
        mut idx: impl FnMut(Lane) -> Option<usize>,
    ) -> [T; WARP_SIZE] {
        let mut indices: Vec<usize> = Vec::with_capacity(WARP_SIZE);
        let out = core::array::from_fn(|i| {
            if i < self.active_lanes {
                if let Some(ix) = idx(self.lane(i)) {
                    indices.push(ix);
                    return sh.get(ix);
                }
            }
            T::default()
        });
        self.charge_shared::<T>(&indices);
        out
    }

    /// Shared-memory store with bank-conflict accounting.
    pub fn sh_store<T: Pod>(
        &mut self,
        sh: &Shared<T>,
        mut val: impl FnMut(Lane) -> Option<(usize, T)>,
    ) {
        let mut indices: Vec<usize> = Vec::with_capacity(WARP_SIZE);
        for i in 0..self.active_lanes {
            if let Some((ix, v)) = val(self.lane(i)) {
                sh.set(ix, v);
                indices.push(ix);
            }
        }
        self.charge_shared::<T>(&indices);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn warp(stats: &mut KernelStats) -> WarpCtx<'_> {
        WarpCtx { warp_id: 0, base_ltid: 0, active_lanes: 32, stats, writes: None }
    }

    #[test]
    fn ballot_builds_lane_mask() {
        let mut stats = KernelStats::default();
        let mut w = warp(&mut stats);
        let mask = w.ballot(|l| l.id % 2 == 0);
        assert_eq!(mask, 0x5555_5555);
        assert_eq!(stats.warp_instructions, 1);
    }

    #[test]
    fn ballot_partial_warp_high_lanes_zero() {
        let mut stats = KernelStats::default();
        let mut w =
            WarpCtx { warp_id: 0, base_ltid: 0, active_lanes: 8, stats: &mut stats, writes: None };
        let mask = w.ballot(|_| true);
        assert_eq!(mask, 0xFF);
    }

    #[test]
    fn lane_carries_block_ltid() {
        let mut stats = KernelStats::default();
        let mut w = WarpCtx {
            warp_id: 2,
            base_ltid: 64,
            active_lanes: 32,
            stats: &mut stats,
            writes: None,
        };
        let ltids = w.lanes(|l| l.ltid as u32);
        assert_eq!(ltids[0], 64);
        assert_eq!(ltids[31], 95);
    }

    #[test]
    fn coalesced_load_uses_minimum_sectors() {
        let buf = GpuBuffer::from_host(&(0u32..64).collect::<Vec<_>>());
        let mut stats = KernelStats::default();
        let mut w = warp(&mut stats);
        let vals = w.load(&buf, |l| Some(l.id));
        assert_eq!(vals[5], 5);
        // 32 lanes x 4B = 128B = 4 sectors of 32B.
        assert_eq!(stats.global_sectors, 4);
        assert_eq!(stats.global_bytes_requested, 128);
    }

    #[test]
    fn strided_load_wastes_sectors() {
        let buf = GpuBuffer::from_host(&vec![0u32; 32 * 16]);
        let mut stats = KernelStats::default();
        let mut w = warp(&mut stats);
        let _ = w.load(&buf, |l| Some(l.id * 16)); // 64B stride
        assert_eq!(stats.global_sectors, 32); // one sector per lane
        assert!(stats.coalescing_efficiency() < 0.2);
    }

    #[test]
    fn store_writes_and_counts() {
        let buf: GpuBuffer<u16> = GpuBuffer::zeroed(32);
        let mut stats = KernelStats::default();
        let mut w = warp(&mut stats);
        w.store(&buf, |l| Some((l.id, l.id as u16 * 2)));
        assert_eq!(buf.to_vec()[10], 20);
        // 32 x 2B = 64B = 2 sectors.
        assert_eq!(stats.global_sectors, 2);
    }

    #[test]
    fn predicated_store_counts_divergence() {
        let buf: GpuBuffer<u32> = GpuBuffer::zeroed(32);
        let mut stats = KernelStats::default();
        let mut w = warp(&mut stats);
        w.store(&buf, |l| if l.id < 4 { Some((l.id, 1)) } else { None });
        assert_eq!(stats.inactive_lane_slots, 28);
        assert_eq!(buf.to_vec()[..5], [1, 1, 1, 1, 0]);
    }

    #[test]
    fn shfl_rotates() {
        let mut stats = KernelStats::default();
        let mut w = warp(&mut stats);
        let vals: [u32; 32] = core::array::from_fn(|i| i as u32);
        let rot = w.shfl(&vals, |lane| (lane + 1) % 32);
        assert_eq!(rot[0], 1);
        assert_eq!(rot[31], 0);
    }

    #[test]
    fn scan_add_is_inclusive_prefix_sum() {
        let mut stats = KernelStats::default();
        let mut w = warp(&mut stats);
        let ones = [1u32; 32];
        let scanned = w.scan_add(&ones);
        for (i, &v) in scanned.iter().enumerate() {
            assert_eq!(v, i as u32 + 1);
        }
        // log2(32) = 5 instructions.
        assert_eq!(stats.warp_instructions, 5);
    }

    #[test]
    fn reduce_add_sums_lanes() {
        let mut stats = KernelStats::default();
        let mut w = warp(&mut stats);
        let vals: [u32; 32] = core::array::from_fn(|i| i as u32);
        assert_eq!(w.reduce_add(&vals), (0..32).sum::<u32>());
    }

    #[test]
    fn sh_column_access_records_conflicts() {
        let sh: Shared<u32> = Shared::new(32 * 32);
        let mut stats = KernelStats::default();
        let mut w = warp(&mut stats);
        let _ = w.sh_load(&sh, |l| Some(l.id * 32));
        assert_eq!(stats.smem_conflict_cycles, 31);

        let sh_padded: Shared<u32> = Shared::new(32 * 33);
        let mut stats2 = KernelStats::default();
        let mut w2 = warp(&mut stats2);
        let _ = w2.sh_load(&sh_padded, |l| Some(l.id * 33));
        assert_eq!(stats2.smem_conflict_cycles, 0);
    }

    #[test]
    fn any_all_semantics() {
        let mut stats = KernelStats::default();
        let mut w = warp(&mut stats);
        assert!(w.any(|l| l.id == 31));
        assert!(!w.any(|_| false));
        assert!(w.all(|_| true));
        assert!(!w.all(|l| l.id < 31));
    }

    #[test]
    fn lanes_pred_counts_divergent_lanes() {
        let mut stats = KernelStats::default();
        let mut w = warp(&mut stats);
        let out = w.lanes_pred(|l| if l.id < 16 { Some(l.id as u32) } else { None });
        assert_eq!(out[15], 15);
        assert_eq!(out[16], 0);
        assert_eq!(stats.inactive_lane_slots, 16);
    }
}
