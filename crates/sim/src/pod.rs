//! Plain-old-data marker trait for element types that may live in simulated
//! device memory.
//!
//! Device buffers are untyped byte ranges on real GPUs; we keep them typed
//! for safety but restrict the element types to fixed-size scalars whose
//! byte width drives the memory-traffic accounting.

/// Marker for scalar types storable in [`crate::memory::GpuBuffer`].
///
/// # Safety contract (informal)
/// Implementors must be `Copy` with no padding and no drop glue, so that the
/// simulator may duplicate and reinterpret values freely. All implementations
/// live in this module; the trait is sealed by convention (not exported for
/// downstream impls).
pub trait Pod: Copy + Default + Send + Sync + 'static {
    /// Element width in bytes, used for transaction/sector accounting.
    const BYTES: usize;
}

macro_rules! impl_pod {
    ($($t:ty),*) => {
        $(impl Pod for $t {
            const BYTES: usize = core::mem::size_of::<$t>();
        })*
    };
}

impl_pod!(u8, u16, u32, u64, i8, i16, i32, i64, f32, f64, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_match_size_of() {
        assert_eq!(<u8 as Pod>::BYTES, 1);
        assert_eq!(<u16 as Pod>::BYTES, 2);
        assert_eq!(<u32 as Pod>::BYTES, 4);
        assert_eq!(<f32 as Pod>::BYTES, 4);
        assert_eq!(<u64 as Pod>::BYTES, 8);
        assert_eq!(<f64 as Pod>::BYTES, 8);
    }
}
