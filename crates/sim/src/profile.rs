//! Timeline profiling: capture a device timeline as an immutable snapshot
//! with absolute start times, render it as a human-readable report with
//! roofline attribution, or export it as Chrome-trace JSON.
//!
//! The simulator executes one stream, so events are scheduled back-to-back:
//! event `i` starts when event `i-1` ends. That makes start times a pure
//! function of the timeline and profiles bit-identical across runs of a
//! deterministic pipeline.
//!
//! The JSON exporter is hand-rolled (the workspace is dependency-free); it
//! emits the Trace Event Format's `"X"` (complete) events, loadable in
//! `chrome://tracing` and Perfetto. Kernels render on one track (tid 0),
//! transfers on another (tid 1).

use crate::grid::{Event, Gpu};
use crate::perf::{KernelRecord, TransferRecord};

/// One entry of a captured profile, stamped with an absolute start time in
/// seconds since the start of the capture window.
#[derive(Debug, Clone)]
pub enum ProfileEvent {
    /// A kernel launch with its counters and roofline attribution.
    Kernel {
        /// Start time, seconds.
        start: f64,
        /// The timeline record (name, time, stats, breakdown).
        record: KernelRecord,
    },
    /// A host<->device copy.
    Transfer {
        /// Start time, seconds.
        start: f64,
        /// The timeline record (direction, bytes, time).
        record: TransferRecord,
    },
}

impl ProfileEvent {
    /// Start time in seconds.
    pub fn start(&self) -> f64 {
        match self {
            ProfileEvent::Kernel { start, .. } | ProfileEvent::Transfer { start, .. } => *start,
        }
    }

    /// Duration in seconds.
    pub fn duration(&self) -> f64 {
        match self {
            ProfileEvent::Kernel { record, .. } => record.time,
            ProfileEvent::Transfer { record, .. } => record.time,
        }
    }

    /// Display name (kernel name or transfer direction).
    pub fn name(&self) -> &str {
        match self {
            ProfileEvent::Kernel { record, .. } => &record.name,
            ProfileEvent::Transfer { record, .. } => record.direction,
        }
    }
}

/// An immutable snapshot of a device timeline with absolute start times.
#[derive(Debug, Clone)]
pub struct Profile {
    /// Device the timeline ran on (spec name).
    pub device: &'static str,
    /// Events in stream order, back-to-back.
    pub events: Vec<ProfileEvent>,
}

impl Profile {
    /// Snapshot the GPU's timeline since construction or the last
    /// [`Gpu::reset_timeline`].
    pub fn capture(gpu: &Gpu) -> Profile {
        let mut clock = 0.0;
        let events = gpu
            .timeline()
            .iter()
            .map(|e| {
                let start = clock;
                clock += e.time();
                match e {
                    Event::Kernel(k) => ProfileEvent::Kernel { start, record: k.clone() },
                    Event::Transfer(t) => ProfileEvent::Transfer { start, record: t.clone() },
                }
            })
            .collect();
        Profile { device: gpu.spec().name, events }
    }

    /// Append another profile's events after this one's end — joins the
    /// captures of two pipeline phases (e.g. a compress and a decompress,
    /// separated by a [`Gpu::reset_timeline`]) into one trace.
    pub fn append(&mut self, other: &Profile) {
        let offset = self.total_time();
        for e in &other.events {
            let mut e = e.clone();
            match &mut e {
                ProfileEvent::Kernel { start, .. } | ProfileEvent::Transfer { start, .. } => {
                    *start += offset;
                }
            }
            self.events.push(e);
        }
    }

    /// Sum of kernel durations (excludes transfers).
    pub fn kernel_time(&self) -> f64 {
        self.kernels().map(|k| k.time).sum()
    }

    /// End of the last event = total modeled time.
    pub fn total_time(&self) -> f64 {
        self.events.iter().map(ProfileEvent::duration).sum()
    }

    /// The kernel records, in launch order.
    pub fn kernels(&self) -> impl Iterator<Item = &KernelRecord> {
        self.events.iter().filter_map(|e| match e {
            ProfileEvent::Kernel { record, .. } => Some(record),
            ProfileEvent::Transfer { .. } => None,
        })
    }

    /// Human-readable per-stage report: timing, roofline attribution
    /// (binding resource and margin), and the counter-derived health
    /// metrics for every kernel and transfer.
    pub fn text_report(&self) -> String {
        let mut out = format!(
            "profile on {} — {} events, kernels {:.2} us, total {:.2} us\n",
            self.device,
            self.events.len(),
            self.kernel_time() * 1e6,
            self.total_time() * 1e6,
        );
        out.push_str(&format!(
            "{:<32} {:>9} {:>9}  {:<15} {:>7} {:>9} {:>9} {:>6}\n",
            "event", "start us", "dur us", "bound by", "margin", "coalesce", "conflicts", "lanes"
        ));
        out.push_str(&"-".repeat(104));
        out.push('\n');
        for e in &self.events {
            match e {
                ProfileEvent::Kernel { start, record } => {
                    let b = &record.breakdown;
                    out.push_str(&format!(
                        "{:<32} {:>9.2} {:>9.2}  {:<15} {:>6.1}x {:>8.0}% {:>9} {:>5.0}%\n",
                        record.name,
                        start * 1e6,
                        record.time * 1e6,
                        b.bound_by.label(),
                        b.margin,
                        record.stats.coalescing_efficiency() * 100.0,
                        record.stats.smem_conflict_cycles,
                        record.stats.lane_utilization() * 100.0,
                    ));
                }
                ProfileEvent::Transfer { start, record } => {
                    out.push_str(&format!(
                        "{:<32} {:>9.2} {:>9.2}  {:<15} {:>7} {:>8.1} GB/s\n",
                        record.direction,
                        start * 1e6,
                        record.time * 1e6,
                        "pcie",
                        "",
                        record.bytes as f64 / record.time / 1e9,
                    ));
                }
            }
        }
        out
    }

    /// Export as Chrome Trace Event Format JSON (`chrome://tracing`,
    /// Perfetto). Kernels land on tid 0, transfers on tid 1; timestamps
    /// and durations are microseconds per the format.
    pub fn chrome_trace_json(&self) -> String {
        let mut events = Vec::with_capacity(self.events.len() + 3);
        events.push(meta_event(0, "kernels"));
        events.push(meta_event(1, "transfers"));
        for e in &self.events {
            let (tid, cat, args) = match e {
                ProfileEvent::Kernel { record, .. } => {
                    let s = &record.stats;
                    let b = &record.breakdown;
                    let args = [
                        ("bound_by".to_string(), json_str(b.bound_by.label())),
                        ("margin".to_string(), json_f64(b.margin)),
                        ("occupancy".to_string(), json_f64(b.occupancy)),
                        ("global_sectors".to_string(), s.global_sectors.to_string()),
                        ("coalescing_efficiency".to_string(), json_f64(s.coalescing_efficiency())),
                        ("smem_conflict_cycles".to_string(), s.smem_conflict_cycles.to_string()),
                        ("lane_utilization".to_string(), json_f64(s.lane_utilization())),
                        ("warp_instructions".to_string(), s.warp_instructions.to_string()),
                        ("barriers".to_string(), s.barriers.to_string()),
                        ("smem_bytes_peak".to_string(), s.smem_bytes_peak.to_string()),
                        ("retries".to_string(), record.retries.to_string()),
                    ];
                    (0u32, "kernel", args.to_vec())
                }
                ProfileEvent::Transfer { record, .. } => {
                    let args = vec![("bytes".to_string(), record.bytes.to_string())];
                    (1u32, "transfer", args)
                }
            };
            events.push(format!(
                "{{\"name\":{},\"cat\":{},\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{},\"args\":{{{}}}}}",
                json_str(e.name()),
                json_str(cat),
                json_f64(e.start() * 1e6),
                json_f64(e.duration() * 1e6),
                tid,
                events_args(&args),
            ));
        }
        format!(
            "{{\"displayTimeUnit\":\"ms\",\"otherData\":{{\"device\":{}}},\"traceEvents\":[{}]}}",
            json_str(self.device),
            events.join(",")
        )
    }
}

fn meta_event(tid: u32, name: &str) -> String {
    format!(
        "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{},\"args\":{{\"name\":{}}}}}",
        tid,
        json_str(name)
    )
}

fn events_args(args: &[(String, String)]) -> String {
    args.iter().map(|(k, v)| format!("{}:{}", json_str(k), v)).collect::<Vec<_>>().join(",")
}

/// JSON string literal with the escapes the format requires.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON number literal: finite `f64` only (JSON has no NaN/Infinity).
fn json_f64(v: f64) -> String {
    debug_assert!(v.is_finite(), "non-finite value {v} reached the trace exporter");
    let v = if v.is_finite() { v } else { 0.0 };
    // `{:?}` prints enough digits to round-trip and always includes a
    // decimal point or exponent, keeping the token a JSON number.
    format!("{v:?}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::A100;
    use crate::memory::GpuBuffer;

    fn profiled_gpu() -> Gpu {
        let mut gpu = Gpu::new(A100);
        let input = gpu.upload(&(0u32..4096).collect::<Vec<_>>());
        let out: GpuBuffer<u32> = gpu.alloc(4096);
        gpu.launch("copy", 16u32, 256u32, |blk| {
            let base = blk.block_linear() * blk.thread_count();
            blk.warps(|w| {
                let v = w.load(&input, |l| Some(base + l.ltid));
                w.store(&out, |l| Some((base + l.ltid, v[l.id])));
            });
        });
        let _ = gpu.download(&out);
        gpu
    }

    #[test]
    fn capture_schedules_back_to_back() {
        let gpu = profiled_gpu();
        let p = Profile::capture(&gpu);
        assert_eq!(p.events.len(), 3);
        let mut clock = 0.0;
        for e in &p.events {
            assert!((e.start() - clock).abs() < 1e-15);
            clock += e.duration();
        }
        assert!((p.total_time() - gpu.total_time()).abs() < 1e-15);
        assert!((p.kernel_time() - gpu.kernel_time()).abs() < 1e-15);
    }

    #[test]
    fn text_report_shows_attribution() {
        let p = Profile::capture(&profiled_gpu());
        let rep = p.text_report();
        assert!(rep.contains("copy"), "{rep}");
        assert!(rep.contains("bound by"), "{rep}");
        assert!(rep.contains("H2D") && rep.contains("D2H"), "{rep}");
    }

    #[test]
    fn chrome_trace_has_all_events() {
        let p = Profile::capture(&profiled_gpu());
        let json = p.chrome_trace_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"name\":\"copy\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"bound_by\""));
        // 3 timeline events + 2 thread-name metadata events.
        assert_eq!(json.matches("\"ph\":").count(), 5);
    }

    #[test]
    fn json_strings_escape_specials() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_str("plain"), "\"plain\"");
    }

    #[test]
    fn json_numbers_round_trip() {
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(0.0), "0.0");
        // Integral values keep a decimal point so the token stays a float.
        assert_eq!(json_f64(3.0), "3.0");
    }
}
