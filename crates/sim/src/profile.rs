//! Timeline profiling: capture a device timeline as an immutable snapshot
//! with absolute start times, render it as a human-readable report with
//! roofline attribution, or export it as Chrome-trace JSON.
//!
//! The simulator executes one stream, so events are scheduled back-to-back:
//! event `i` starts when event `i-1` ends. That makes start times a pure
//! function of the timeline and profiles bit-identical across runs of a
//! deterministic pipeline.
//!
//! The JSON exporters are hand-rolled (the workspace is dependency-free)
//! on the shared [`fzgpu_trace::chrome`] builder and [`fzgpu_trace::json`]
//! escaping; they emit the Trace Event Format's `"X"` (complete) events,
//! loadable in `chrome://tracing` and Perfetto. Kernels render on one
//! track (tid 0), transfers on another (tid 1).
//!
//! # Clock domains
//! [`Profile::chrome_trace_json`] carries *modeled/analytic* device time
//! only. [`Profile::unified_chrome_trace`] joins it with a captured host
//! span [`fzgpu_trace::Trace`] in one document: pid 0 is the modeled
//! device (analytic clock), pid 1 is the host (real wallclock). The two
//! clocks share an origin (t=0 = capture start) but not a rate — never
//! compare durations across pids.

use fzgpu_trace::chrome::ChromeTrace;
use fzgpu_trace::json;

use crate::grid::{Event, Gpu};
use crate::perf::{KernelRecord, TransferRecord};

/// One entry of a captured profile, stamped with an absolute start time in
/// seconds since the start of the capture window.
#[derive(Debug, Clone)]
pub enum ProfileEvent {
    /// A kernel launch with its counters and roofline attribution.
    Kernel {
        /// Start time, seconds.
        start: f64,
        /// The timeline record (name, time, stats, breakdown).
        record: KernelRecord,
    },
    /// A host<->device copy.
    Transfer {
        /// Start time, seconds.
        start: f64,
        /// The timeline record (direction, bytes, time).
        record: TransferRecord,
    },
}

impl ProfileEvent {
    /// Start time in seconds.
    pub fn start(&self) -> f64 {
        match self {
            ProfileEvent::Kernel { start, .. } | ProfileEvent::Transfer { start, .. } => *start,
        }
    }

    /// Duration in seconds.
    pub fn duration(&self) -> f64 {
        match self {
            ProfileEvent::Kernel { record, .. } => record.time,
            ProfileEvent::Transfer { record, .. } => record.time,
        }
    }

    /// Display name (kernel name — decorated with its retry ordinal for
    /// failed transient-fault attempts — or transfer direction).
    pub fn name(&self) -> std::borrow::Cow<'_, str> {
        match self {
            ProfileEvent::Kernel { record, .. } => record.display_name(),
            ProfileEvent::Transfer { record, .. } => std::borrow::Cow::Borrowed(record.direction),
        }
    }
}

/// An immutable snapshot of a device timeline with absolute start times.
#[derive(Debug, Clone)]
pub struct Profile {
    /// Device the timeline ran on (spec name).
    pub device: &'static str,
    /// Events in stream order, back-to-back.
    pub events: Vec<ProfileEvent>,
}

impl Profile {
    /// Snapshot the GPU's timeline since construction or the last
    /// [`Gpu::reset_timeline`].
    pub fn capture(gpu: &Gpu) -> Profile {
        let mut clock = 0.0;
        let events = gpu
            .timeline()
            .iter()
            .map(|e| {
                let start = clock;
                clock += e.time();
                match e {
                    Event::Kernel(k) => ProfileEvent::Kernel { start, record: k.clone() },
                    Event::Transfer(t) => ProfileEvent::Transfer { start, record: t.clone() },
                }
            })
            .collect();
        Profile { device: gpu.spec().name, events }
    }

    /// Append another profile's events after this one's end — joins the
    /// captures of two pipeline phases (e.g. a compress and a decompress,
    /// separated by a [`Gpu::reset_timeline`]) into one trace.
    pub fn append(&mut self, other: &Profile) {
        let offset = self.total_time();
        for e in &other.events {
            let mut e = e.clone();
            match &mut e {
                ProfileEvent::Kernel { start, .. } | ProfileEvent::Transfer { start, .. } => {
                    *start += offset;
                }
            }
            self.events.push(e);
        }
    }

    /// Sum of kernel durations (excludes transfers).
    pub fn kernel_time(&self) -> f64 {
        self.kernels().map(|k| k.time).sum()
    }

    /// End of the last event = total modeled time.
    pub fn total_time(&self) -> f64 {
        self.events.iter().map(ProfileEvent::duration).sum()
    }

    /// The kernel records, in launch order.
    pub fn kernels(&self) -> impl Iterator<Item = &KernelRecord> {
        self.events.iter().filter_map(|e| match e {
            ProfileEvent::Kernel { record, .. } => Some(record),
            ProfileEvent::Transfer { .. } => None,
        })
    }

    /// Human-readable per-stage report: timing, roofline attribution
    /// (binding resource and margin), and the counter-derived health
    /// metrics for every kernel and transfer.
    pub fn text_report(&self) -> String {
        let mut out = format!(
            "profile on {} — {} events, kernels {:.2} us, total {:.2} us\n",
            self.device,
            self.events.len(),
            self.kernel_time() * 1e6,
            self.total_time() * 1e6,
        );
        out.push_str(&format!(
            "{:<32} {:>9} {:>9}  {:<15} {:>7} {:>9} {:>9} {:>6}\n",
            "event", "start us", "dur us", "bound by", "margin", "coalesce", "conflicts", "lanes"
        ));
        out.push_str(&"-".repeat(104));
        out.push('\n');
        for e in &self.events {
            match e {
                ProfileEvent::Kernel { start, record } => {
                    let b = &record.breakdown;
                    out.push_str(&format!(
                        "{:<32} {:>9.2} {:>9.2}  {:<15} {:>6.1}x {:>8.0}% {:>9} {:>5.0}%\n",
                        record.display_name(),
                        start * 1e6,
                        record.time * 1e6,
                        b.bound_by.label(),
                        b.margin,
                        record.stats.coalescing_efficiency() * 100.0,
                        record.stats.smem_conflict_cycles,
                        record.stats.lane_utilization() * 100.0,
                    ));
                }
                ProfileEvent::Transfer { start, record } => {
                    out.push_str(&format!(
                        "{:<32} {:>9.2} {:>9.2}  {:<15} {:>7} {:>8.1} GB/s\n",
                        record.direction,
                        start * 1e6,
                        record.time * 1e6,
                        "pcie",
                        "",
                        record.bytes as f64 / record.time / 1e9,
                    ));
                }
            }
        }
        out
    }

    /// Export as Chrome Trace Event Format JSON (`chrome://tracing`,
    /// Perfetto). Kernels land on tid 0, transfers on tid 1; timestamps
    /// and durations are microseconds per the format. Modeled device time
    /// only — see [`Profile::unified_chrome_trace`] for the joined
    /// host+device document.
    pub fn chrome_trace_json(&self) -> String {
        let mut t = ChromeTrace::new();
        t.thread_name(0, 0, "kernels");
        t.thread_name(0, 1, "transfers");
        self.write_device_events(&mut t);
        t.finish(&[("device", json::escape(self.device))])
    }

    /// Export one Chrome-trace document carrying both clock domains:
    /// pid 0 = "modeled device (analytic clock)" with this profile's
    /// kernel/transfer records, pid 1 = "host (wallclock)" with the spans
    /// of a capture window ([`fzgpu_trace::begin_capture`] /
    /// [`fzgpu_trace::end_capture`]). Both timelines start at t=0 but tick
    /// different clocks; durations are only comparable within a pid.
    pub fn unified_chrome_trace(&self, host: &fzgpu_trace::Trace) -> String {
        let mut t = ChromeTrace::new();
        t.process_name(0, "modeled device (analytic clock)");
        t.thread_name(0, 0, "kernels");
        t.thread_name(0, 1, "transfers");
        t.process_name(1, "host (wallclock)");
        t.thread_name(1, 0, "host spans");
        self.write_device_events(&mut t);
        for r in &host.records {
            let mut args: Vec<(&str, String)> =
                r.fields.iter().map(|(k, v)| (*k, json::escape(v))).collect();
            args.push(("depth", r.depth.to_string()));
            let ts_us = r.start_ns as f64 / 1e3;
            match r.kind {
                fzgpu_trace::SpanKind::Span => {
                    t.complete(1, 0, &r.name, "host", ts_us, r.dur_ns as f64 / 1e3, &args);
                }
                fzgpu_trace::SpanKind::Event => {
                    t.instant(1, 0, &r.name, "host", ts_us, &args);
                }
            }
        }
        t.finish(&[
            ("device", json::escape(self.device)),
            ("clock_domains", json::escape("pid 0 analytic/modeled, pid 1 host wallclock")),
        ])
    }

    /// Machine-readable JSON for `fzgpu profile --json`: device, totals,
    /// and every event with its start/duration and health counters.
    pub fn to_json(&self) -> String {
        let mut events = Vec::with_capacity(self.events.len());
        for e in &self.events {
            let head = format!(
                "{{\"name\":{},\"start_us\":{},\"dur_us\":{}",
                json::escape(&e.name()),
                json::num(e.start() * 1e6),
                json::num(e.duration() * 1e6),
            );
            let body = match e {
                ProfileEvent::Kernel { record, .. } => {
                    let s = &record.stats;
                    let b = &record.breakdown;
                    format!(
                        ",\"kind\":\"kernel\",\"bound_by\":{},\"margin\":{},\"occupancy\":{},\
                         \"coalescing_efficiency\":{},\"smem_conflict_cycles\":{},\
                         \"lane_utilization\":{},\"retries\":{}}}",
                        json::escape(b.bound_by.label()),
                        json::num(b.margin),
                        json::num(b.occupancy),
                        json::num(s.coalescing_efficiency()),
                        s.smem_conflict_cycles,
                        json::num(s.lane_utilization()),
                        record.retries,
                    )
                }
                ProfileEvent::Transfer { record, .. } => {
                    format!(",\"kind\":\"transfer\",\"bytes\":{}}}", record.bytes)
                }
            };
            events.push(format!("{head}{body}"));
        }
        format!(
            "{{\"device\":{},\"kernel_time_us\":{},\"total_time_us\":{},\"events\":[{}]}}",
            json::escape(self.device),
            json::num(self.kernel_time() * 1e6),
            json::num(self.total_time() * 1e6),
            events.join(",")
        )
    }

    /// Append this profile's records to a [`ChromeTrace`] under pid 0.
    fn write_device_events(&self, t: &mut ChromeTrace) {
        for e in &self.events {
            let (tid, cat, args) = match e {
                ProfileEvent::Kernel { record, .. } => {
                    let s = &record.stats;
                    let b = &record.breakdown;
                    let args = vec![
                        ("bound_by", json::escape(b.bound_by.label())),
                        ("margin", json::num(b.margin)),
                        ("occupancy", json::num(b.occupancy)),
                        ("global_sectors", s.global_sectors.to_string()),
                        ("coalescing_efficiency", json::num(s.coalescing_efficiency())),
                        ("smem_conflict_cycles", s.smem_conflict_cycles.to_string()),
                        ("lane_utilization", json::num(s.lane_utilization())),
                        ("warp_instructions", s.warp_instructions.to_string()),
                        ("barriers", s.barriers.to_string()),
                        ("smem_bytes_peak", s.smem_bytes_peak.to_string()),
                        ("retries", record.retries.to_string()),
                    ];
                    (0u32, "kernel", args)
                }
                ProfileEvent::Transfer { record, .. } => {
                    (1u32, "transfer", vec![("bytes", record.bytes.to_string())])
                }
            };
            t.complete(0, tid, &e.name(), cat, e.start() * 1e6, e.duration() * 1e6, &args);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::A100;
    use crate::memory::GpuBuffer;

    fn profiled_gpu() -> Gpu {
        let mut gpu = Gpu::new(A100);
        let input = gpu.upload(&(0u32..4096).collect::<Vec<_>>());
        let out: GpuBuffer<u32> = gpu.alloc(4096);
        gpu.launch("copy", 16u32, 256u32, |blk| {
            let base = blk.block_linear() * blk.thread_count();
            blk.warps(|w| {
                let v = w.load(&input, |l| Some(base + l.ltid));
                w.store(&out, |l| Some((base + l.ltid, v[l.id])));
            });
        });
        let _ = gpu.download(&out);
        gpu
    }

    #[test]
    fn capture_schedules_back_to_back() {
        let gpu = profiled_gpu();
        let p = Profile::capture(&gpu);
        assert_eq!(p.events.len(), 3);
        let mut clock = 0.0;
        for e in &p.events {
            assert!((e.start() - clock).abs() < 1e-15);
            clock += e.duration();
        }
        assert!((p.total_time() - gpu.total_time()).abs() < 1e-15);
        assert!((p.kernel_time() - gpu.kernel_time()).abs() < 1e-15);
    }

    #[test]
    fn text_report_shows_attribution() {
        let p = Profile::capture(&profiled_gpu());
        let rep = p.text_report();
        assert!(rep.contains("copy"), "{rep}");
        assert!(rep.contains("bound by"), "{rep}");
        assert!(rep.contains("H2D") && rep.contains("D2H"), "{rep}");
    }

    #[test]
    fn chrome_trace_has_all_events() {
        let p = Profile::capture(&profiled_gpu());
        let json = p.chrome_trace_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"name\":\"copy\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"bound_by\""));
        // 3 timeline events + 2 thread-name metadata events.
        assert_eq!(json.matches("\"ph\":").count(), 5);
    }

    #[test]
    fn hostile_kernel_names_stay_valid_json() {
        use fzgpu_trace::json::{parse, Value};
        let hostile = "evil \"kernel\"\\ with\nnewline\tand \u{1} ctrl";
        let mut gpu = Gpu::new(A100);
        gpu.record_kernel(hostile, 1e-6, crate::perf::KernelStats::default());
        let p = Profile::capture(&gpu);
        let doc = parse(&p.chrome_trace_json()).expect("hostile name must stay valid JSON");
        let events = doc.get("traceEvents").and_then(Value::as_array).unwrap();
        let names: Vec<&str> =
            events.iter().filter_map(|e| e.get("name").and_then(Value::as_str)).collect();
        assert!(names.contains(&hostile), "{names:?}");
    }

    #[test]
    fn unified_trace_carries_both_clock_domains() {
        use fzgpu_trace::json::{parse, Value};
        fzgpu_trace::begin_capture();
        let gpu = {
            let _s = fzgpu_trace::span("host.work").field("n", 4096);
            profiled_gpu()
        };
        let host = fzgpu_trace::end_capture();
        let doc = parse(&Profile::capture(&gpu).unified_chrome_trace(&host)).unwrap();
        let events = doc.get("traceEvents").and_then(Value::as_array).unwrap();
        let pid_of = |e: &Value| e.get("pid").and_then(Value::as_f64).unwrap();
        assert!(events.iter().any(|e| pid_of(e) == 0.0));
        assert!(events.iter().any(
            |e| pid_of(e) == 1.0 && e.get("name").and_then(Value::as_str) == Some("host.work")
        ));
        // The capture wrapped the whole pipeline, so the gpu.launch span
        // rides along on the host track.
        assert!(events.iter().any(|e| e.get("name").and_then(Value::as_str) == Some("gpu.launch")));
        assert!(doc.get("otherData").and_then(|o| o.get("clock_domains")).is_some());
    }

    #[test]
    fn profile_json_parses_and_matches_totals() {
        use fzgpu_trace::json::{parse, Value};
        let p = Profile::capture(&profiled_gpu());
        let doc = parse(&p.to_json()).unwrap();
        assert_eq!(doc.get("device").and_then(Value::as_str), Some("A100"));
        let events = doc.get("traceEvents");
        assert!(events.is_none(), "to_json is not a chrome trace");
        let evs = doc.get("events").and_then(Value::as_array).unwrap();
        assert_eq!(evs.len(), p.events.len());
        let total = doc.get("total_time_us").and_then(Value::as_f64).unwrap();
        assert!((total - p.total_time() * 1e6).abs() < 1e-9);
        assert_eq!(evs[1].get("kind").and_then(Value::as_str), Some("kernel"));
    }

    proptest::proptest! {
        /// Satellite: `append` rebases the second capture monotonically and
        /// keeps the time sums consistent, for arbitrary phase timelines.
        #[test]
        fn append_rebases_monotonically(
            first in proptest::collection::vec(1e-7f64..1e-3, 0..12),
            second in proptest::collection::vec(1e-7f64..1e-3, 1..12),
        ) {
            let build = |times: &[f64]| {
                let mut gpu = Gpu::new(A100);
                for (i, &t) in times.iter().enumerate() {
                    gpu.record_kernel(&format!("k{i}"), t, crate::perf::KernelStats::default());
                }
                Profile::capture(&gpu)
            };
            let mut joined = build(&first);
            let b = build(&second);
            let (ta, tb) = (joined.total_time(), b.total_time());
            let (ka, kb) = (joined.kernel_time(), b.kernel_time());
            joined.append(&b);
            proptest::prop_assert!((joined.total_time() - (ta + tb)).abs() < 1e-12);
            proptest::prop_assert!((joined.kernel_time() - (ka + kb)).abs() < 1e-12);
            // Starts stay monotonically non-decreasing and back-to-back
            // across the joint: every event starts when the previous ends.
            let mut clock = 0.0;
            for e in &joined.events {
                proptest::prop_assert!((e.start() - clock).abs() < 1e-12);
                clock += e.duration();
            }
            // The appended phase is rebased past the whole first phase.
            proptest::prop_assert!(joined.events[first.len()].start() >= ta - 1e-12);
        }
    }
}
