//! Simulated device global memory.
//!
//! A [`GpuBuffer`] is a typed allocation in the simulated GPU's global
//! memory. Kernels access it exclusively through the warp context
//! ([`crate::warp::WarpCtx::load`] / [`crate::warp::WarpCtx::store`]), which
//! performs per-warp coalescing analysis. Host-side access happens between
//! launches via [`GpuBuffer::to_vec`] / [`GpuBuffer::copy_from_host`].
//!
//! # Why `UnsafeCell`
//! CUDA global memory allows concurrent writes from many blocks; a data race
//! there is undefined behaviour *on the real device too* — correct kernels
//! write disjoint locations (or use atomics). We adopt exactly that
//! contract: the kernel author guarantees that concurrently executing blocks
//! never write overlapping elements. All kernels in this repository satisfy
//! it by construction (each block owns a disjoint output tile, or offsets
//! come from an exclusive prefix sum, which makes ranges disjoint).

use core::cell::UnsafeCell;
use core::sync::atomic::{AtomicU64, Ordering};

use crate::pod::Pod;

/// Global allocation counter for buffer identities (race detection).
static NEXT_BUFFER_ID: AtomicU64 = AtomicU64::new(1);

/// A typed allocation in simulated device global memory.
pub struct GpuBuffer<T: Pod> {
    cells: Box<[UnsafeCell<T>]>,
    id: u64,
}

// SAFETY: see module docs — kernels follow the CUDA contract that
// concurrent writes target disjoint elements; the simulator never reads a
// cell while another thread writes the *same* cell in a correct kernel.
unsafe impl<T: Pod> Sync for GpuBuffer<T> {}
unsafe impl<T: Pod> Send for GpuBuffer<T> {}

impl<T: Pod> GpuBuffer<T> {
    /// Allocate a zero-initialized buffer of `len` elements.
    pub fn zeroed(len: usize) -> Self {
        let cells = (0..len).map(|_| UnsafeCell::new(T::default())).collect();
        Self { cells, id: NEXT_BUFFER_ID.fetch_add(1, Ordering::Relaxed) }
    }

    /// Allocate and fill from host data (models `cudaMemcpy` H2D; transfer
    /// time is accounted by [`crate::grid::Gpu::upload`], not here).
    pub fn from_host(data: &[T]) -> Self {
        let cells = data.iter().map(|&v| UnsafeCell::new(v)).collect();
        Self { cells, id: NEXT_BUFFER_ID.fetch_add(1, Ordering::Relaxed) }
    }

    /// Unique allocation id (used by the optional write-race detector).
    #[inline]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when the buffer holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Size in bytes.
    #[inline]
    pub fn size_bytes(&self) -> usize {
        self.len() * T::BYTES
    }

    /// Fewest 32-byte sectors any kernel can move to stream this whole
    /// buffer once — the denominator for traffic-amplification budgets
    /// (see [`crate::budget::StatsBudget`]).
    #[inline]
    pub fn min_sectors(&self) -> u64 {
        (self.size_bytes() as u64).div_ceil(crate::device::SECTOR_BYTES as u64)
    }

    /// Raw element read. Bounds-checked; used by the warp context and by
    /// host-side readback.
    #[inline]
    pub(crate) fn read(&self, idx: usize) -> T {
        let cell = &self.cells[idx];
        // SAFETY: per the module contract there is no concurrent write to
        // this element.
        unsafe { *cell.get() }
    }

    /// Raw element write. Bounds-checked.
    #[inline]
    pub(crate) fn write(&self, idx: usize, v: T) {
        let cell = &self.cells[idx];
        // SAFETY: per the module contract no other thread accesses this
        // element concurrently.
        unsafe {
            *cell.get() = v;
        }
    }

    /// Total bits stored in the buffer (fault-injection address space).
    #[inline]
    pub fn bit_len(&self) -> usize {
        self.size_bytes() * 8
    }

    /// Flip one bit of the buffer in place — the global-memory soft-error
    /// hook used by [`crate::fault::FaultInjector`]. Bit `i` lives in byte
    /// `i / 8` of element `i / (8 * T::BYTES)` (little-endian within the
    /// element, matching the host representation).
    ///
    /// # Panics
    /// Panics when `bit >= self.bit_len()`.
    pub fn flip_bit(&self, bit: usize) {
        let bits_per_elem = T::BYTES * 8;
        let cell = &self.cells[bit / bits_per_elem];
        let within = bit % bits_per_elem;
        // SAFETY: same single-writer contract as `write`; `UnsafeCell<T>`
        // has the layout of `T`, whose bytes we address directly.
        unsafe {
            let byte = (cell.get() as *mut u8).add(within / 8);
            *byte ^= 1 << (within % 8);
        }
    }

    /// Copy the device contents back to the host (models D2H without
    /// charging transfer time; use [`crate::grid::Gpu::download`] to charge it).
    pub fn to_vec(&self) -> Vec<T> {
        (0..self.len()).map(|i| self.read(i)).collect()
    }

    /// Host-side peek at one element (e.g. reading a reduction result)
    /// without modeling a bulk transfer. Must not be called while a kernel
    /// is writing the buffer (launches are synchronous, so any call between
    /// launches is fine).
    pub fn host_read(&self, idx: usize) -> T {
        self.read(idx)
    }

    /// Overwrite a prefix of the buffer from host memory.
    ///
    /// # Panics
    /// Panics if `data.len() > self.len()`.
    pub fn copy_from_host(&mut self, data: &[T]) {
        assert!(
            data.len() <= self.len(),
            "host slice ({}) larger than device buffer ({})",
            data.len(),
            self.len()
        );
        for (i, &v) in data.iter().enumerate() {
            self.write(i, v);
        }
    }

    /// Overwrite a prefix of the buffer from host memory through a shared
    /// reference — the analytic engine's fill path, which writes
    /// host-computed kernel results into buffers that are shared (`&`)
    /// kernel arguments. Same single-writer contract as [`Self::write`]:
    /// launches are synchronous, so any call between launches is safe.
    ///
    /// # Panics
    /// Panics if `data.len() > self.len()`.
    pub fn host_fill_from(&self, data: &[T]) {
        assert!(
            data.len() <= self.len(),
            "host slice ({}) larger than device buffer ({})",
            data.len(),
            self.len()
        );
        for (i, &v) in data.iter().enumerate() {
            self.write(i, v);
        }
    }

    /// Borrow the contents as a plain slice. Requires `&mut self`, which
    /// statically proves no kernel is concurrently mutating the buffer.
    pub fn as_slice_mut_view(&mut self) -> &[T] {
        // SAFETY: `&mut self` guarantees exclusive access; `UnsafeCell<T>`
        // has the same layout as `T`.
        unsafe { core::slice::from_raw_parts(self.cells.as_ptr() as *const T, self.cells.len()) }
    }
}

impl<T: Pod + core::fmt::Debug> core::fmt::Debug for GpuBuffer<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "GpuBuffer<{}>[len={}]", core::any::type_name::<T>(), self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_host_device() {
        let data: Vec<u32> = (0..1000).map(|i| i * 3).collect();
        let buf = GpuBuffer::from_host(&data);
        assert_eq!(buf.len(), 1000);
        assert_eq!(buf.size_bytes(), 4000);
        assert_eq!(buf.to_vec(), data);
    }

    #[test]
    fn zeroed_is_default() {
        let buf: GpuBuffer<f32> = GpuBuffer::zeroed(16);
        assert!(buf.to_vec().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn copy_from_host_prefix() {
        let mut buf: GpuBuffer<u16> = GpuBuffer::zeroed(8);
        buf.copy_from_host(&[1, 2, 3]);
        assert_eq!(buf.to_vec(), vec![1, 2, 3, 0, 0, 0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "larger than device buffer")]
    fn copy_from_host_too_big_panics() {
        let mut buf: GpuBuffer<u8> = GpuBuffer::zeroed(2);
        buf.copy_from_host(&[1, 2, 3]);
    }

    #[test]
    fn mut_view_matches_contents() {
        let mut buf = GpuBuffer::from_host(&[5u64, 6, 7]);
        assert_eq!(buf.as_slice_mut_view(), &[5, 6, 7]);
    }
}
