//! Multi-GPU node model.
//!
//! The paper's testbed puts four A100s behind one 32-lane PCIe 4.0 switch:
//! a single GPU sees its full 16-lane 32 GB/s, but with all four
//! transferring at once the switch saturates at "aggregately about
//! 45 GB/s", i.e. a measured 11.4 GB/s per GPU (§4.6). [`Cluster`] captures
//! exactly that contention curve and gives the harness a makespan view of
//! embarrassingly-parallel chunked compression (§4.1).

use crate::device::DeviceSpec;
use crate::grid::Gpu;

/// Aggregate switch bandwidth of the paper's node, bytes/second
/// (4 x 11.4 GB/s measured).
pub const SWITCH_AGGREGATE: f64 = 45.6e9;

/// A node with `n` identical GPUs behind one PCIe switch.
pub struct Cluster {
    gpus: Vec<Gpu>,
    /// Aggregate switch bandwidth, bytes/second.
    pub switch_bandwidth: f64,
}

impl Cluster {
    /// A node of `n` GPUs of the given spec with the paper's switch.
    pub fn new(spec: DeviceSpec, n: usize) -> Self {
        assert!(n > 0);
        Self { gpus: (0..n).map(|_| Gpu::new(spec)).collect(), switch_bandwidth: SWITCH_AGGREGATE }
    }

    /// Number of GPUs.
    pub fn len(&self) -> usize {
        self.gpus.len()
    }

    /// True when the cluster has no GPUs (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.gpus.is_empty()
    }

    /// Mutable access to GPU `i`.
    pub fn gpu(&mut self, i: usize) -> &mut Gpu {
        &mut self.gpus[i]
    }

    /// Per-GPU host-link bandwidth when `active` GPUs transfer
    /// concurrently: each gets its 16-lane share until the switch
    /// saturates. `active = 1` -> 32 GB/s, `active = 4` -> 11.4 GB/s
    /// (the paper's measurements).
    pub fn transfer_bandwidth(&self, active: usize) -> f64 {
        assert!(active >= 1 && active <= self.gpus.len());
        let peak = self.gpus[0].spec().pcie_peak;
        peak.min(self.switch_bandwidth / active as f64)
    }

    /// Makespan of the kernels launched so far: concurrent GPUs finish at
    /// the time of the slowest one.
    pub fn kernel_makespan(&self) -> f64 {
        self.gpus.iter().map(Gpu::kernel_time).fold(0.0, f64::max)
    }

    /// Aggregate compression throughput for `total_bytes` split across the
    /// GPUs (bytes/second): limited by the slowest GPU.
    pub fn aggregate_throughput(&self, total_bytes: usize) -> f64 {
        total_bytes as f64 / self.kernel_makespan()
    }

    /// Time to ship `per_gpu_bytes` from every GPU to the host
    /// concurrently, at the contended per-GPU bandwidth.
    pub fn concurrent_transfer_time(&self, per_gpu_bytes: usize) -> f64 {
        per_gpu_bytes as f64 / self.transfer_bandwidth(self.gpus.len())
    }

    /// Reset all timelines.
    pub fn reset(&mut self) {
        for g in &mut self.gpus {
            g.reset_timeline();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::A100;
    use crate::memory::GpuBuffer;

    #[test]
    fn contention_matches_paper_measurements() {
        let c = Cluster::new(A100, 4);
        assert_eq!(c.transfer_bandwidth(1), 32.0e9); // full 16-lane share
        assert!((c.transfer_bandwidth(4) - 11.4e9).abs() < 1e6); // measured
        assert!(c.transfer_bandwidth(2) < c.transfer_bandwidth(1));
    }

    #[test]
    fn makespan_is_slowest_gpu() {
        let mut c = Cluster::new(A100, 2);
        let small = GpuBuffer::from_host(&vec![1u32; 1024]);
        let big = GpuBuffer::from_host(&vec![1u32; 1 << 20]);
        let run = |gpu: &mut Gpu, buf: &GpuBuffer<u32>, n: usize| {
            let out: GpuBuffer<u32> = gpu.alloc(n);
            gpu.launch("copy", (n as u32 / 256).max(1), 256u32, |blk| {
                let base = blk.block_linear() * 256;
                blk.warps(|w| {
                    let v = w.load(buf, |l| (base + l.ltid < n).then_some(base + l.ltid));
                    w.store(&out, |l| (base + l.ltid < n).then(|| (base + l.ltid, v[l.id])));
                });
            });
        };
        run(c.gpu(0), &small, 1024);
        run(c.gpu(1), &big, 1 << 20);
        let slow = c.gpu(1).kernel_time();
        assert_eq!(c.kernel_makespan(), slow);
        assert!(c.aggregate_throughput(4 * ((1 << 20) + 1024)) > 0.0);
    }

    #[test]
    fn reset_clears_all() {
        let mut c = Cluster::new(A100, 3);
        c.gpu(2).launch("noop", 1u32, 32u32, |_| {});
        assert!(c.kernel_makespan() > 0.0);
        c.reset();
        assert_eq!(c.kernel_makespan(), 0.0);
    }

    #[test]
    #[should_panic]
    fn transfer_bandwidth_bounds_checked() {
        let c = Cluster::new(A100, 2);
        let _ = c.transfer_bandwidth(3);
    }
}
