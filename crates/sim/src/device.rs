//! Device specifications for the simulated GPUs.
//!
//! The paper evaluates on an NVIDIA A100 (108 SMs, 40 GB HBM2) and an
//! RTX A4000 (40 SMs, 16 GB GDDR6). The throughput model in
//! [`crate::perf`] consumes these numbers; everything else in the simulator
//! is architecture-independent.

/// Number of lanes per warp. Fixed at 32 on every CUDA architecture the
/// paper targets; the warp-ballot bitshuffle design depends on it.
pub const WARP_SIZE: usize = 32;

/// Shared-memory bank count; successive 4-byte words map to successive banks.
pub const SMEM_BANKS: usize = 32;

/// Size in bytes of one global-memory sector (the granularity at which the
/// memory system moves data on Ampere-class GPUs).
pub const SECTOR_BYTES: usize = 32;

/// Static description of a simulated GPU.
///
/// All throughput figures are *device peaks*; the performance model applies
/// achievable-fraction derates, so the numbers here should come straight
/// from the datasheet / the paper's hardware table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceSpec {
    /// Marketing name, used in reports.
    pub name: &'static str,
    /// Streaming-multiprocessor count.
    pub sm_count: u32,
    /// Peak global-memory bandwidth in bytes/second.
    pub mem_bandwidth: f64,
    /// Fraction of peak bandwidth achievable by a well-tuned streaming
    /// kernel (empirically ~0.85 on Ampere).
    pub mem_efficiency: f64,
    /// Peak shared-memory bandwidth in bytes/second (all SMs aggregated:
    /// 128 bytes/clock/SM).
    pub smem_bandwidth: f64,
    /// Aggregate simple-integer/logic instruction throughput in
    /// warp-instructions/second (per-SM issue rate x SM count x clock).
    pub warp_instr_rate: f64,
    /// Fixed cost of one kernel launch in seconds (driver + dispatch).
    pub launch_overhead: f64,
    /// Shared memory available per thread block, bytes.
    pub smem_per_block: usize,
    /// Maximum threads per block.
    pub max_threads_per_block: u32,
    /// Device memory capacity in bytes.
    pub mem_capacity: u64,
    /// Peak per-GPU PCIe bandwidth, bytes/second (16-lane PCIe 4.0).
    pub pcie_peak: f64,
    /// Congested per-GPU PCIe bandwidth when all four GPUs of the paper's
    /// node transfer simultaneously (measured 11.4 GB/s in the paper).
    pub pcie_congested: f64,
    /// Asynchronous copy (DMA) engines: the number of host<->device
    /// transfers the device can drive concurrently with compute. Bounds
    /// copy/compute overlap in [`crate::stream::StreamSim`].
    pub copy_engines: u32,
    /// Fixed cost of one `cudaMalloc` in seconds. Device allocation takes
    /// an implicit device synchronization plus driver bookkeeping; reusing
    /// buffers through [`crate::mempool::MemPool`] avoids it. Only charged
    /// when a [`crate::grid::Gpu`] opts into allocation accounting.
    pub alloc_overhead: f64,
}

impl DeviceSpec {
    /// Effective (derated) global-memory bandwidth.
    #[inline]
    pub fn effective_bandwidth(&self) -> f64 {
        self.mem_bandwidth * self.mem_efficiency
    }
}

/// NVIDIA A100-40GB (SXM) as used on the paper's HPC-cluster node.
pub const A100: DeviceSpec = DeviceSpec {
    name: "A100",
    sm_count: 108,
    mem_bandwidth: 1555.0e9,
    mem_efficiency: 0.85,
    // 108 SMs * 128 B/clock * 1.41 GHz
    smem_bandwidth: 108.0 * 128.0 * 1.41e9,
    // 108 SMs * 4 schedulers * 1.41 GHz
    warp_instr_rate: 108.0 * 4.0 * 1.41e9,
    launch_overhead: 4.0e-6,
    smem_per_block: 164 * 1024,
    max_threads_per_block: 1024,
    mem_capacity: 40 * 1024 * 1024 * 1024,
    pcie_peak: 32.0e9,
    pcie_congested: 11.4e9,
    // GA100 exposes 5 async copy engines.
    copy_engines: 5,
    alloc_overhead: 10.0e-6,
};

/// NVIDIA RTX A4000 as used in the paper's in-house workstation
/// (the paper lists 40 SMs, 16 GB GDDR6).
pub const A4000: DeviceSpec = DeviceSpec {
    name: "A4000",
    sm_count: 40,
    mem_bandwidth: 448.0e9,
    mem_efficiency: 0.85,
    smem_bandwidth: 40.0 * 128.0 * 1.56e9,
    warp_instr_rate: 40.0 * 4.0 * 1.56e9,
    launch_overhead: 4.0e-6,
    smem_per_block: 100 * 1024,
    max_threads_per_block: 1024,
    mem_capacity: 16 * 1024 * 1024 * 1024,
    pcie_peak: 32.0e9,
    pcie_congested: 11.4e9,
    // GA104 workstation parts expose 2 async copy engines.
    copy_engines: 2,
    alloc_overhead: 10.0e-6,
};

/// Look a device preset up by case-insensitive name (`"a100"`, `"a4000"`).
pub fn by_name(name: &str) -> Option<DeviceSpec> {
    match name.to_ascii_lowercase().as_str() {
        "a100" => Some(A100),
        "a4000" => Some(A4000),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)] // cross-checks the preset tables
    fn a100_outclasses_a4000() {
        assert!(A100.mem_bandwidth > A4000.mem_bandwidth);
        assert!(A100.sm_count > A4000.sm_count);
        assert!(A100.warp_instr_rate > A4000.warp_instr_rate);
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(by_name("A100").unwrap().name, "A100");
        assert_eq!(by_name("a4000").unwrap().name, "A4000");
        assert!(by_name("h100").is_none());
    }

    #[test]
    fn effective_bandwidth_is_derated() {
        assert!(A100.effective_bandwidth() < A100.mem_bandwidth);
        assert!(A100.effective_bandwidth() > 0.5 * A100.mem_bandwidth);
    }

    #[test]
    fn copy_engines_are_positive_everywhere() {
        for spec in [A100, A4000] {
            assert!(spec.copy_engines >= 1, "{}", spec.name);
            assert!(spec.alloc_overhead > 0.0, "{}", spec.name);
        }
        let (a100, a4000) = (A100.copy_engines, A4000.copy_engines);
        assert!(a100 > a4000, "A100 has more DMA engines than A4000: {a100} vs {a4000}");
    }

    #[test]
    fn pcie_congestion_matches_paper() {
        // The paper measures 11.4 GB/s per GPU when 4 GPUs transfer at once.
        assert_eq!(A100.pcie_congested, 11.4e9);
        assert_eq!(A100.pcie_peak, 32.0e9);
    }
}
