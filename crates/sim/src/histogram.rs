//! Device-wide histogram (the substrate for cuSZ's Huffman codebook
//! construction).
//!
//! Per-block privatized shared-memory histograms are merged by a second
//! kernel — the standard GPU histogram shape. The shared-memory
//! increments go through the bank-conflict accounting, so skewed symbol
//! distributions (everyone hitting the same bin) cost more, as on hardware.

use crate::grid::Gpu;
use crate::memory::GpuBuffer;

const BLOCK_THREADS: usize = 256;
const ITEMS_PER_THREAD: usize = 16;
const TILE: usize = BLOCK_THREADS * ITEMS_PER_THREAD;

/// Histogram of `input[..n]` clamped into `bins` buckets.
///
/// Values `>= bins` are clamped into the last bucket (compressors bound the
/// symbol range before histogramming). Returns a device buffer of counts.
pub fn histogram_u16(
    gpu: &mut Gpu,
    input: &GpuBuffer<u16>,
    n: usize,
    bins: usize,
) -> GpuBuffer<u32> {
    assert!(bins > 0 && bins <= 65536, "bins must be in 1..=65536");
    let ntiles = n.div_ceil(TILE).max(1);
    let partials: GpuBuffer<u32> = gpu.alloc(ntiles * bins);

    gpu.launch("hist.partials", ntiles as u32, BLOCK_THREADS as u32, |blk| {
        let tile_base = blk.block_linear() * TILE;
        let block_id = blk.block_linear();
        let sh = blk.shared_array::<u32>(bins);
        blk.warps(|w| {
            for k in 0..ITEMS_PER_THREAD {
                let g0 = tile_base + k * BLOCK_THREADS;
                let v = w.load(input, |l| (g0 + l.ltid < n).then_some(g0 + l.ltid));
                // Shared-memory atomic add per lane = one read + one write
                // at the lane's bin. Lanes of a warp hitting the same bank
                // serialize (the bank-conflict accounting covers the
                // skewed-distribution penalty). Duplicate bins within the
                // warp are folded before the write so the stored counts
                // stay exact, matching what hardware atomics produce.
                let old =
                    w.sh_load(&sh, |l| (g0 + l.ltid < n).then(|| (v[l.id] as usize).min(bins - 1)));
                let mut folded: Vec<(usize, u32)> = Vec::with_capacity(32);
                for i in 0..w.active_lanes {
                    if g0 + w.base_ltid + i < n {
                        let bin = (v[i] as usize).min(bins - 1);
                        match folded.iter_mut().find(|(b, _)| *b == bin) {
                            Some((_, c)) => *c += 1,
                            None => folded.push((bin, old[i] + 1)),
                        }
                    }
                }
                // `folded` now holds absolute new counts per distinct bin
                // (old value + increments); `old` reads of duplicate lanes
                // saw the same pre-update value, so add extra duplicates.
                let mut it = folded.into_iter();
                w.sh_store(&sh, |l| {
                    let _ = l;
                    it.next()
                });
            }
        });
        blk.sync();
        // Write the tile-private histogram out, coalesced, chunks of 32
        // bins round-robined over the block's warps.
        let nwarps = blk.warp_count();
        blk.warps(|w| {
            let nchunks = bins.div_ceil(32);
            for chunk in (w.warp_id..nchunks).step_by(nwarps) {
                let chunk_base = chunk * 32;
                let counts =
                    w.sh_load(&sh, |l| (chunk_base + l.id < bins).then_some(chunk_base + l.id));
                w.store(&partials, |l| {
                    let b = chunk_base + l.id;
                    (b < bins).then(|| (block_id * bins + b, counts[l.id]))
                });
            }
        });
    });

    // Merge partials: one thread per bin sums over tiles.
    let out: GpuBuffer<u32> = gpu.alloc(bins);
    let blocks = bins.div_ceil(BLOCK_THREADS) as u32;
    gpu.launch("hist.merge", blocks, BLOCK_THREADS as u32, |blk| {
        let base = blk.block_linear() * blk.thread_count();
        blk.warps(|w| {
            let mut acc = [0u32; 32];
            for t in 0..ntiles {
                let v = w.load(&partials, |l| {
                    let b = base + l.ltid;
                    (b < bins).then_some(t * bins + b)
                });
                for i in 0..32 {
                    acc[i] = acc[i].wrapping_add(v[i]);
                }
            }
            w.store(&out, |l| {
                let b = base + l.ltid;
                (b < bins).then(|| (b, acc[l.id]))
            });
        });
    });
    gpu.free(partials);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::A100;

    fn reference(data: &[u16], bins: usize) -> Vec<u32> {
        let mut h = vec![0u32; bins];
        for &v in data {
            h[(v as usize).min(bins - 1)] += 1;
        }
        h
    }

    #[test]
    fn small_histogram_matches_reference() {
        let mut gpu = Gpu::new(A100);
        let data: Vec<u16> = vec![0, 1, 1, 2, 2, 2, 3, 3, 3, 3];
        let buf = GpuBuffer::from_host(&data);
        let hist = histogram_u16(&mut gpu, &buf, data.len(), 8);
        assert_eq!(hist.to_vec(), reference(&data, 8));
    }

    #[test]
    fn multi_tile_histogram() {
        let mut gpu = Gpu::new(A100);
        let n = TILE * 2 + 500;
        let data: Vec<u16> = (0..n).map(|i| ((i * 31) % 100) as u16).collect();
        let buf = GpuBuffer::from_host(&data);
        let hist = histogram_u16(&mut gpu, &buf, n, 128);
        assert_eq!(hist.to_vec(), reference(&data, 128));
    }

    #[test]
    fn clamps_out_of_range() {
        let mut gpu = Gpu::new(A100);
        let data: Vec<u16> = vec![1000, 2000, 3];
        let buf = GpuBuffer::from_host(&data);
        let hist = histogram_u16(&mut gpu, &buf, 3, 16);
        let h = hist.to_vec();
        assert_eq!(h[15], 2);
        assert_eq!(h[3], 1);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(16))]
        #[test]
        fn prop_histogram_matches_reference(
            data in proptest::collection::vec(0u16..300, 0..9000),
            bins in 1usize..512,
        ) {
            let mut gpu = Gpu::new(A100);
            let buf = GpuBuffer::from_host(&data);
            let hist = histogram_u16(&mut gpu, &buf, data.len(), bins);
            proptest::prop_assert_eq!(hist.to_vec(), reference(&data, bins));
        }
    }

    #[test]
    fn empty_input_all_zero() {
        let mut gpu = Gpu::new(A100);
        let buf: GpuBuffer<u16> = gpu.alloc(0);
        let hist = histogram_u16(&mut gpu, &buf, 0, 4);
        assert_eq!(hist.to_vec(), vec![0; 4]);
    }
}
