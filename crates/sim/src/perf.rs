//! Kernel statistics and the roofline timing model.
//!
//! Every warp-level operation executed through the simulator records into
//! [`KernelStats`]. After a launch completes, [`estimate_time`] converts the
//! aggregate counters into a kernel time on a given [`DeviceSpec`] using a
//! first-order roofline: the kernel is as slow as its slowest resource
//! (global-memory pipe, shared-memory pipe, or instruction issue), plus a
//! fixed launch overhead.
//!
//! The data transforms themselves are executed bit-exactly; only *time* is
//! modeled. This is the substitution documented in DESIGN.md §1: it keeps
//! relative throughput shapes (memory-bound kernels scale with bandwidth,
//! divergent/serialized kernels are penalized) without NVIDIA hardware.

use crate::device::{DeviceSpec, SECTOR_BYTES};

/// Aggregate hardware-event counters for one kernel launch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// 32-byte global-memory sectors actually moved (after coalescing).
    pub global_sectors: u64,
    /// Bytes the lanes asked for (lower bound on traffic).
    pub global_bytes_requested: u64,
    /// Warp-level shared-memory access instructions.
    pub smem_accesses: u64,
    /// Extra serialized shared-memory cycles caused by bank conflicts
    /// (0 for a conflict-free kernel).
    pub smem_conflict_cycles: u64,
    /// Warp instructions issued (each warp-wide op = 1).
    pub warp_instructions: u64,
    /// Lane-slots wasted to divergence (inactive lanes during an op).
    pub inactive_lane_slots: u64,
    /// `__syncthreads()` barriers executed (per block, summed).
    pub barriers: u64,
}

impl KernelStats {
    /// Merge another block's counters into this one.
    pub fn merge(&mut self, other: &KernelStats) {
        self.global_sectors += other.global_sectors;
        self.global_bytes_requested += other.global_bytes_requested;
        self.smem_accesses += other.smem_accesses;
        self.smem_conflict_cycles += other.smem_conflict_cycles;
        self.warp_instructions += other.warp_instructions;
        self.inactive_lane_slots += other.inactive_lane_slots;
        self.barriers += other.barriers;
    }

    /// Bytes moved over the global-memory pipe (sector-granular).
    #[inline]
    pub fn global_bytes_moved(&self) -> u64 {
        self.global_sectors * SECTOR_BYTES as u64
    }

    /// Coalescing efficiency in (0, 1]: requested bytes over moved bytes.
    /// 1.0 means perfectly coalesced; 1/8 is the worst case for 4-byte
    /// elements scattered one per sector.
    pub fn coalescing_efficiency(&self) -> f64 {
        if self.global_sectors == 0 {
            return 1.0;
        }
        self.global_bytes_requested as f64 / self.global_bytes_moved() as f64
    }

    /// Fraction of lane-slots that did useful work.
    pub fn lane_utilization(&self) -> f64 {
        let total = self.warp_instructions * 32;
        if total == 0 {
            return 1.0;
        }
        1.0 - self.inactive_lane_slots as f64 / total as f64
    }
}

/// Estimate the execution time in seconds of a kernel with the given
/// counters on the given device.
pub fn estimate_time(spec: &DeviceSpec, stats: &KernelStats) -> f64 {
    // Global memory: sectors * 32B over effective bandwidth.
    let mem_time = stats.global_bytes_moved() as f64 / spec.effective_bandwidth();
    // Shared memory: each conflict-free warp access moves up to 128B in one
    // cycle; conflicts serialize extra cycles. Convert to time via the
    // aggregate shared-memory bandwidth.
    let smem_cycles = stats.smem_accesses + stats.smem_conflict_cycles;
    let smem_time = (smem_cycles * 128) as f64 / spec.smem_bandwidth;
    // Instruction issue.
    let issue_time = stats.warp_instructions as f64 / spec.warp_instr_rate;
    spec.launch_overhead + mem_time.max(smem_time).max(issue_time)
}

/// Record of a finished kernel launch, kept on the [`crate::grid::Gpu`] timeline.
#[derive(Debug, Clone)]
pub struct KernelRecord {
    /// Kernel name given at launch.
    pub name: String,
    /// Modeled execution time in seconds.
    pub time: f64,
    /// The merged counters.
    pub stats: KernelStats,
}

/// Record of a host<->device transfer on the timeline.
#[derive(Debug, Clone)]
pub struct TransferRecord {
    /// "H2D" or "D2H".
    pub direction: &'static str,
    /// Bytes moved.
    pub bytes: u64,
    /// Modeled time in seconds at peak PCIe bandwidth.
    pub time: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::A100;

    #[test]
    fn merge_adds_counters() {
        let mut a = KernelStats { global_sectors: 10, warp_instructions: 5, ..Default::default() };
        let b = KernelStats { global_sectors: 3, warp_instructions: 2, barriers: 1, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.global_sectors, 13);
        assert_eq!(a.warp_instructions, 7);
        assert_eq!(a.barriers, 1);
    }

    #[test]
    fn memory_bound_kernel_scales_with_traffic() {
        let small = KernelStats { global_sectors: 1 << 20, ..Default::default() };
        let big = KernelStats { global_sectors: 1 << 24, ..Default::default() };
        let ts = estimate_time(&A100, &small);
        let tb = estimate_time(&A100, &big);
        assert!(tb > ts);
        // Asymptotically 16x more traffic ~ 16x more time (launch overhead
        // shrinks relatively).
        let ratio = (tb - A100.launch_overhead) / (ts - A100.launch_overhead);
        assert!((ratio - 16.0).abs() < 0.1, "ratio {ratio}");
    }

    #[test]
    fn launch_overhead_is_floor() {
        let empty = KernelStats::default();
        assert_eq!(estimate_time(&A100, &empty), A100.launch_overhead);
    }

    #[test]
    fn bank_conflicts_slow_smem_bound_kernels() {
        let clean = KernelStats { smem_accesses: 1 << 24, ..Default::default() };
        let conflicted = KernelStats {
            smem_accesses: 1 << 24,
            smem_conflict_cycles: 31 << 24, // 32-way conflicts
            ..Default::default()
        };
        assert!(estimate_time(&A100, &conflicted) > 10.0 * estimate_time(&A100, &clean));
    }

    #[test]
    fn coalescing_efficiency_bounds() {
        let perfect = KernelStats {
            global_sectors: 4,
            global_bytes_requested: 128,
            ..Default::default()
        };
        assert!((perfect.coalescing_efficiency() - 1.0).abs() < 1e-12);
        let scattered = KernelStats {
            global_sectors: 32,
            global_bytes_requested: 128,
            ..Default::default()
        };
        assert!(scattered.coalescing_efficiency() < 0.2);
    }

    #[test]
    fn lane_utilization_full_when_no_divergence() {
        let s = KernelStats { warp_instructions: 100, ..Default::default() };
        assert_eq!(s.lane_utilization(), 1.0);
        let d = KernelStats { warp_instructions: 100, inactive_lane_slots: 1600, ..Default::default() };
        assert!((d.lane_utilization() - 0.5).abs() < 1e-12);
    }
}
