//! Kernel statistics and the roofline timing model.
//!
//! Every warp-level operation executed through the simulator records into
//! [`KernelStats`]. After a launch completes, [`estimate_time`] converts the
//! aggregate counters into a kernel time on a given [`DeviceSpec`] using a
//! first-order roofline: the kernel is as slow as its slowest resource
//! (global-memory pipe, shared-memory pipe, or instruction issue), plus a
//! fixed launch overhead.
//!
//! The data transforms themselves are executed bit-exactly; only *time* is
//! modeled. This is the substitution documented in DESIGN.md §1: it keeps
//! relative throughput shapes (memory-bound kernels scale with bandwidth,
//! divergent/serialized kernels are penalized) without NVIDIA hardware.

use crate::device::{DeviceSpec, SECTOR_BYTES};

/// Aggregate hardware-event counters for one kernel launch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// 32-byte global-memory sectors actually moved (after coalescing).
    pub global_sectors: u64,
    /// Bytes the lanes asked for (lower bound on traffic).
    pub global_bytes_requested: u64,
    /// Warp-level shared-memory access instructions.
    pub smem_accesses: u64,
    /// Extra serialized shared-memory cycles caused by bank conflicts
    /// (0 for a conflict-free kernel).
    pub smem_conflict_cycles: u64,
    /// Warp instructions issued (each warp-wide op = 1).
    pub warp_instructions: u64,
    /// Lane-slots wasted to divergence (inactive lanes during an op).
    pub inactive_lane_slots: u64,
    /// `__syncthreads()` barriers executed (per block, summed).
    pub barriers: u64,
    /// Peak shared-memory bytes allocated by any single block.
    pub smem_bytes_peak: u64,
}

impl KernelStats {
    /// Merge another block's counters into this one. Event counters add;
    /// the peak allocation takes the max — both keep the merge commutative
    /// and associative, so block order never changes the result.
    pub fn merge(&mut self, other: &KernelStats) {
        self.global_sectors += other.global_sectors;
        self.global_bytes_requested += other.global_bytes_requested;
        self.smem_accesses += other.smem_accesses;
        self.smem_conflict_cycles += other.smem_conflict_cycles;
        self.warp_instructions += other.warp_instructions;
        self.inactive_lane_slots += other.inactive_lane_slots;
        self.barriers += other.barriers;
        self.smem_bytes_peak = self.smem_bytes_peak.max(other.smem_bytes_peak);
    }

    /// Counters of `count` blocks that each produced exactly these stats —
    /// the analytic engine's class-scaling step. Every event counter is an
    /// integer, so the product equals `count` repeated [`KernelStats::merge`]
    /// calls bit-for-bit; the per-block peak allocation is unchanged.
    pub fn scaled(&self, count: u64) -> KernelStats {
        KernelStats {
            global_sectors: self.global_sectors * count,
            global_bytes_requested: self.global_bytes_requested * count,
            smem_accesses: self.smem_accesses * count,
            smem_conflict_cycles: self.smem_conflict_cycles * count,
            warp_instructions: self.warp_instructions * count,
            inactive_lane_slots: self.inactive_lane_slots * count,
            barriers: self.barriers * count,
            smem_bytes_peak: self.smem_bytes_peak,
        }
    }

    /// Bytes moved over the global-memory pipe (sector-granular).
    #[inline]
    pub fn global_bytes_moved(&self) -> u64 {
        self.global_sectors * SECTOR_BYTES as u64
    }

    /// Coalescing efficiency in (0, 1]: requested bytes over moved bytes.
    /// 1.0 means perfectly coalesced; 1/8 is the worst case for 4-byte
    /// elements scattered one per sector.
    pub fn coalescing_efficiency(&self) -> f64 {
        if self.global_sectors == 0 {
            return 1.0;
        }
        self.global_bytes_requested as f64 / self.global_bytes_moved() as f64
    }

    /// Fraction of lane-slots that did useful work.
    pub fn lane_utilization(&self) -> f64 {
        let total = self.warp_instructions * 32;
        if total == 0 {
            return 1.0;
        }
        1.0 - self.inactive_lane_slots as f64 / total as f64
    }

    /// Traffic amplification in [1, 8]: bytes moved over bytes requested.
    /// 1.0 means every moved sector was fully wanted; 8.0 is the worst case
    /// for 4-byte elements scattered one per 32-byte sector.
    pub fn traffic_amplification(&self) -> f64 {
        if self.global_bytes_requested == 0 {
            return 1.0;
        }
        self.global_bytes_moved() as f64 / self.global_bytes_requested as f64
    }
}

/// Raw per-resource pipe times in seconds, before occupancy scaling:
/// `(mem_time, smem_time, issue_time)`.
fn resource_times(spec: &DeviceSpec, stats: &KernelStats) -> (f64, f64, f64) {
    // Global memory: sectors * 32B over effective bandwidth.
    let mem_time = stats.global_bytes_moved() as f64 / spec.effective_bandwidth();
    // Shared memory: each conflict-free warp access moves up to 128B in one
    // cycle; conflicts serialize extra cycles. Convert to time via the
    // aggregate shared-memory bandwidth.
    let smem_cycles = stats.smem_accesses + stats.smem_conflict_cycles;
    let smem_time = (smem_cycles * 128) as f64 / spec.smem_bandwidth;
    // Instruction issue.
    let issue_time = stats.warp_instructions as f64 / spec.warp_instr_rate;
    (mem_time, smem_time, issue_time)
}

/// Estimate the execution time in seconds of a kernel with the given
/// counters on the given device.
pub fn estimate_time(spec: &DeviceSpec, stats: &KernelStats) -> f64 {
    let (mem_time, smem_time, issue_time) = resource_times(spec, stats);
    spec.launch_overhead + mem_time.max(smem_time).max(issue_time)
}

/// The device resource a kernel's modeled time is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundBy {
    /// The global-memory pipe (sector traffic over effective bandwidth).
    GlobalMemory,
    /// The shared-memory pipe (accesses + bank-conflict serialization).
    SharedMemory,
    /// Warp-instruction issue.
    Issue,
    /// Fixed launch overhead dominates every pipe (tiny kernel).
    LaunchOverhead,
    /// Pre-timed analytic record ([`crate::grid::Gpu::record_kernel`]);
    /// the counters do not determine the time.
    Analytic,
}

impl BoundBy {
    /// Short label for reports and trace args.
    pub fn label(&self) -> &'static str {
        match self {
            BoundBy::GlobalMemory => "global-memory",
            BoundBy::SharedMemory => "shared-memory",
            BoundBy::Issue => "issue",
            BoundBy::LaunchOverhead => "launch-overhead",
            BoundBy::Analytic => "analytic",
        }
    }
}

/// Per-resource decomposition of one kernel's modeled time, with roofline
/// attribution: which resource bound the kernel and by what margin.
///
/// All pipe times are post-occupancy-scaling, so `total` always equals
/// `launch_overhead + mem_time.max(smem_time).max(issue_time)` and the
/// records on a timeline sum exactly to [`crate::grid::Gpu::kernel_time`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeBreakdown {
    /// Occupancy-scaled global-memory pipe time, seconds.
    pub mem_time: f64,
    /// Occupancy-scaled shared-memory pipe time, seconds.
    pub smem_time: f64,
    /// Occupancy-scaled instruction-issue time, seconds.
    pub issue_time: f64,
    /// Fixed launch overhead, seconds.
    pub launch_overhead: f64,
    /// Occupancy factor applied to the pipe times, in (0, 1].
    pub occupancy: f64,
    /// Modeled total, seconds (equals the record's `time`).
    pub total: f64,
    /// The binding resource.
    pub bound_by: BoundBy,
    /// How decisively the binding resource wins: its time over the
    /// runner-up's, `>= 1`. Capped at 1000 so the value stays JSON-safe
    /// when the runner-up is idle.
    pub margin: f64,
}

/// Cap on [`TimeBreakdown::margin`] (a runner-up pipe may be fully idle).
const MARGIN_CAP: f64 = 1000.0;

impl TimeBreakdown {
    /// Attribute a kernel's modeled time on `spec` with the given occupancy
    /// factor (see [`crate::grid::Gpu::launch`] for how occupancy is derived).
    pub fn attribute(spec: &DeviceSpec, stats: &KernelStats, occupancy: f64) -> TimeBreakdown {
        let (mem, smem, issue) = resource_times(spec, stats);
        let (mem, smem, issue) = (mem / occupancy, smem / occupancy, issue / occupancy);
        let candidates = [
            (BoundBy::GlobalMemory, mem),
            (BoundBy::SharedMemory, smem),
            (BoundBy::Issue, issue),
            (BoundBy::LaunchOverhead, spec.launch_overhead),
        ];
        // Winner = slowest resource; ties break toward the earlier entry,
        // so a fully idle kernel reports LaunchOverhead only when every
        // pipe time is strictly below it.
        let (bound_by, top) =
            candidates.iter().copied().reduce(|a, b| if b.1 > a.1 { b } else { a }).unwrap();
        let runner_up = candidates
            .iter()
            .filter(|(who, _)| *who != bound_by)
            .map(|&(_, t)| t)
            .fold(0.0, f64::max);
        let margin = if runner_up > 0.0 { (top / runner_up).min(MARGIN_CAP) } else { MARGIN_CAP };
        TimeBreakdown {
            mem_time: mem,
            smem_time: smem,
            issue_time: issue,
            launch_overhead: spec.launch_overhead,
            occupancy,
            total: spec.launch_overhead + mem.max(smem).max(issue),
            bound_by,
            margin,
        }
    }

    /// Breakdown for a pre-timed analytic record: the whole duration is
    /// attributed to [`BoundBy::Analytic`] because no counter model
    /// produced it.
    pub fn analytic(time: f64) -> TimeBreakdown {
        TimeBreakdown {
            mem_time: 0.0,
            smem_time: 0.0,
            issue_time: 0.0,
            launch_overhead: 0.0,
            occupancy: 1.0,
            total: time,
            bound_by: BoundBy::Analytic,
            margin: 1.0,
        }
    }
}

/// Record of a finished kernel launch, kept on the [`crate::grid::Gpu`] timeline.
#[derive(Debug, Clone)]
pub struct KernelRecord {
    /// Kernel name given at launch.
    pub name: String,
    /// Modeled execution time in seconds (always equals `breakdown.total`).
    pub time: f64,
    /// The merged counters.
    pub stats: KernelStats,
    /// Roofline attribution of `time`.
    pub breakdown: TimeBreakdown,
    /// Transient launch failures retried before this (successful) launch —
    /// 0 unless fault injection is active (see [`crate::fault`]). Each
    /// failed attempt also appears on the timeline as its own analytic
    /// record, so retry overhead is visible in `kernel_time`.
    pub retries: u32,
    /// `Some(k)`: this record charges the `k`-th *failed* transient-fault
    /// attempt of the kernel named `name` (1-based), not a real execution.
    /// Kept as data rather than baked into the name string so the retry
    /// loop allocates nothing extra; renderers recover the decorated
    /// spelling through [`KernelRecord::display_name`].
    pub retry_attempt: Option<u32>,
}

impl KernelRecord {
    /// Name as shown in reports and traces: the plain kernel name, with
    /// a `" [transient-fault retry k]"` suffix rendered lazily for failed
    /// retry attempts.
    pub fn display_name(&self) -> std::borrow::Cow<'_, str> {
        match self.retry_attempt {
            None => std::borrow::Cow::Borrowed(&self.name),
            Some(k) => {
                std::borrow::Cow::Owned(format!("{} [transient-fault retry {k}]", self.name))
            }
        }
    }
}

/// Record of a host<->device transfer on the timeline.
#[derive(Debug, Clone)]
pub struct TransferRecord {
    /// "H2D" or "D2H".
    pub direction: &'static str,
    /// Bytes moved.
    pub bytes: u64,
    /// Modeled time in seconds at peak PCIe bandwidth.
    pub time: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::A100;

    #[test]
    fn merge_adds_counters() {
        let mut a = KernelStats { global_sectors: 10, warp_instructions: 5, ..Default::default() };
        let b = KernelStats {
            global_sectors: 3,
            warp_instructions: 2,
            barriers: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.global_sectors, 13);
        assert_eq!(a.warp_instructions, 7);
        assert_eq!(a.barriers, 1);
    }

    #[test]
    fn memory_bound_kernel_scales_with_traffic() {
        let small = KernelStats { global_sectors: 1 << 20, ..Default::default() };
        let big = KernelStats { global_sectors: 1 << 24, ..Default::default() };
        let ts = estimate_time(&A100, &small);
        let tb = estimate_time(&A100, &big);
        assert!(tb > ts);
        // Asymptotically 16x more traffic ~ 16x more time (launch overhead
        // shrinks relatively).
        let ratio = (tb - A100.launch_overhead) / (ts - A100.launch_overhead);
        assert!((ratio - 16.0).abs() < 0.1, "ratio {ratio}");
    }

    #[test]
    fn launch_overhead_is_floor() {
        let empty = KernelStats::default();
        assert_eq!(estimate_time(&A100, &empty), A100.launch_overhead);
    }

    #[test]
    fn bank_conflicts_slow_smem_bound_kernels() {
        let clean = KernelStats { smem_accesses: 1 << 24, ..Default::default() };
        let conflicted = KernelStats {
            smem_accesses: 1 << 24,
            smem_conflict_cycles: 31 << 24, // 32-way conflicts
            ..Default::default()
        };
        assert!(estimate_time(&A100, &conflicted) > 10.0 * estimate_time(&A100, &clean));
    }

    #[test]
    fn coalescing_efficiency_bounds() {
        let perfect =
            KernelStats { global_sectors: 4, global_bytes_requested: 128, ..Default::default() };
        assert!((perfect.coalescing_efficiency() - 1.0).abs() < 1e-12);
        let scattered =
            KernelStats { global_sectors: 32, global_bytes_requested: 128, ..Default::default() };
        assert!(scattered.coalescing_efficiency() < 0.2);
    }

    #[test]
    fn attribution_picks_the_slowest_resource() {
        let memory_bound = KernelStats { global_sectors: 1 << 24, ..Default::default() };
        let b = TimeBreakdown::attribute(&A100, &memory_bound, 1.0);
        assert_eq!(b.bound_by, BoundBy::GlobalMemory);
        assert!(b.margin > 1.0);
        assert!((b.total - estimate_time(&A100, &memory_bound)).abs() < 1e-18);

        let smem_bound = KernelStats {
            smem_accesses: 1 << 20,
            smem_conflict_cycles: 31 << 20,
            ..Default::default()
        };
        assert_eq!(
            TimeBreakdown::attribute(&A100, &smem_bound, 1.0).bound_by,
            BoundBy::SharedMemory
        );

        let issue_bound = KernelStats { warp_instructions: 1 << 30, ..Default::default() };
        assert_eq!(TimeBreakdown::attribute(&A100, &issue_bound, 1.0).bound_by, BoundBy::Issue);

        let empty = TimeBreakdown::attribute(&A100, &KernelStats::default(), 1.0);
        assert_eq!(empty.bound_by, BoundBy::LaunchOverhead);
        assert_eq!(empty.total, A100.launch_overhead);
    }

    #[test]
    fn occupancy_scales_pipe_times_not_overhead() {
        let stats = KernelStats { global_sectors: 1 << 20, ..Default::default() };
        let full = TimeBreakdown::attribute(&A100, &stats, 1.0);
        let half = TimeBreakdown::attribute(&A100, &stats, 0.5);
        assert!((half.mem_time - 2.0 * full.mem_time).abs() < 1e-18);
        assert_eq!(half.launch_overhead, full.launch_overhead);
        assert!(half.total > full.total);
    }

    #[test]
    fn margin_is_capped_when_runner_up_is_idle() {
        // Zero launch overhead and a single active pipe: runner-up is 0.
        let mut spec = A100;
        spec.launch_overhead = 0.0;
        let stats = KernelStats { global_sectors: 1024, ..Default::default() };
        let b = TimeBreakdown::attribute(&spec, &stats, 1.0);
        assert!(b.margin.is_finite());
        assert_eq!(b.margin, 1000.0);
    }

    #[test]
    fn analytic_breakdown_carries_the_time() {
        let b = TimeBreakdown::analytic(3.5e-6);
        assert_eq!(b.bound_by, BoundBy::Analytic);
        assert_eq!(b.total, 3.5e-6);
        assert_eq!(b.mem_time + b.smem_time + b.issue_time, 0.0);
    }

    #[test]
    fn smem_peak_merges_by_max() {
        let mut a = KernelStats { smem_bytes_peak: 4096, ..Default::default() };
        let b = KernelStats { smem_bytes_peak: 1024, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.smem_bytes_peak, 4096);
        let mut c = KernelStats { smem_bytes_peak: 1024, ..Default::default() };
        c.merge(&KernelStats { smem_bytes_peak: 4096, ..Default::default() });
        assert_eq!(c.smem_bytes_peak, 4096);
    }

    #[test]
    fn traffic_amplification_inverse_of_coalescing() {
        let scattered =
            KernelStats { global_sectors: 32, global_bytes_requested: 128, ..Default::default() };
        let amp = scattered.traffic_amplification();
        assert!((amp * scattered.coalescing_efficiency() - 1.0).abs() < 1e-12);
        assert_eq!(KernelStats::default().traffic_amplification(), 1.0);
    }

    #[test]
    fn lane_utilization_full_when_no_divergence() {
        let s = KernelStats { warp_instructions: 100, ..Default::default() };
        assert_eq!(s.lane_utilization(), 1.0);
        let d =
            KernelStats { warp_instructions: 100, inactive_lane_slots: 1600, ..Default::default() };
        assert!((d.lane_utilization() - 0.5).abs() < 1e-12);
    }
}
