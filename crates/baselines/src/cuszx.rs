//! cuSZx baseline: ultrafast blockwise error-bounded compression.
//!
//! Per Yu et al. (HPDC '22, cited by the paper): split the field into
//! small blocks, detect "constant" blocks (every value within the bound of
//! a base value) and store them as the base alone; for non-constant blocks
//! store the base plus fixed-width quantized offsets using the minimum bit
//! width that covers the block ("lightweight bitwise operations"). No
//! prediction crosses block boundaries — which is why it is the fastest
//! and lowest-ratio compressor in the comparison (paper §4.3–4.4).

use fzgpu_codecs::bitpack;
use fzgpu_core::lorenzo::Shape;
use fzgpu_sim::scan::exclusive_sum;
use fzgpu_sim::{DeviceSpec, Gpu, GpuBuffer};

use crate::common::{resolve_eb, Baseline, Run, Setting};

/// Values per block (cuSZx default granularity).
pub const BLOCK: usize = 64;

/// cuSZx on a simulated device.
pub struct CuSzx {
    gpu: Gpu,
}

/// A cuSZx stream.
pub struct CuSzxStream {
    /// Field shape (block structure is 1D over the flattened field).
    pub shape: Shape,
    /// Absolute bound.
    pub eb: f64,
    /// Per-block base value (minimum).
    pub bases: Vec<f32>,
    /// Per-block offset bit width (0 = constant block).
    pub bits: Vec<u8>,
    /// Packed offset words for non-constant blocks, concatenated in block
    /// order.
    pub payload: Vec<u32>,
    /// Number of f32 values.
    pub n_values: usize,
}

impl CuSzxStream {
    /// Compressed bytes: base + width per block + packed payload + header.
    pub fn size_bytes(&self) -> usize {
        self.bases.len() * 4 + self.bits.len() + self.payload.len() * 4 + 64
    }
}

/// Words needed for one block at `bits` per value.
#[inline]
fn block_words(bits: u8) -> usize {
    bitpack::words_for(BLOCK, bits)
}

impl CuSzx {
    /// New instance.
    pub fn new(spec: DeviceSpec) -> Self {
        Self { gpu: Gpu::new(spec) }
    }

    /// Compress under an absolute bound.
    pub fn compress(&mut self, data: &[f32], shape: Shape, eb_abs: f64) -> CuSzxStream {
        let n = data.len();
        let nblocks = n.div_ceil(BLOCK);
        let d_input = self.gpu.upload(data);
        self.gpu.reset_timeline();

        let d_bases: GpuBuffer<f32> = self.gpu.alloc(nblocks);
        let d_bits: GpuBuffer<u8> = self.gpu.alloc(nblocks);
        let d_words: GpuBuffer<u32> = self.gpu.alloc(nblocks);

        // Kernel 1: per-block stats — one *warp* per 64-value block
        // (coalesced loads, warp min/max reduce), deriving the offset bit
        // width (0 => constant block).
        let ebx2 = 2.0 * eb_abs;
        let warps_per_launch_block = 8usize;
        let launch_blocks = nblocks.div_ceil(warps_per_launch_block) as u32;
        self.gpu.launch("cuszx.block_stats", launch_blocks, 256u32, |blk| {
            let first_block = blk.block_linear() * warps_per_launch_block;
            blk.warps(|w| {
                let b = first_block + w.warp_id;
                if b >= nblocks {
                    return;
                }
                let g0 = b * BLOCK;
                let mut lo = f32::INFINITY;
                let mut hi = f32::NEG_INFINITY;
                for half in 0..BLOCK / 32 {
                    let v = w.load(&d_input, |l| {
                        let g = g0 + half * 32 + l.id;
                        (g < n).then_some(g)
                    });
                    for (i, &x) in v.iter().enumerate() {
                        if g0 + half * 32 + i < n && i < w.active_lanes {
                            lo = lo.min(x);
                            hi = hi.max(x);
                        }
                    }
                }
                w.charge_alu(10); // 2x shuffle-based warp min/max reduce
                let (bits, base) = if !lo.is_finite() {
                    (0u8, 0.0f32)
                } else if (hi - lo) as f64 <= ebx2 {
                    // Constant block: the midpoint represents every value
                    // within eb.
                    (0u8, (lo + hi) * 0.5)
                } else {
                    let steps = ((hi - lo) as f64 / ebx2).ceil() as u64;
                    ((64 - steps.leading_zeros() as u64).min(32) as u8, lo)
                };
                w.store(&d_bases, |l| (l.id == 0).then_some((b, base)));
                w.store(&d_bits, |l| (l.id == 0).then_some((b, bits)));
                w.store(&d_words, |l| (l.id == 0).then_some((b, block_words(bits) as u32)));
            });
        });

        // Offsets for the variable-size payload (device scan, as in the
        // real implementation).
        let d_offsets: GpuBuffer<u32> = self.gpu.alloc(nblocks);
        let total_words = exclusive_sum(&mut self.gpu, &d_words, &d_offsets, nblocks) as usize;

        // Kernel 2: pack non-constant blocks at their offsets, one warp per
        // block: coalesced value loads, cooperative fixed-width packing.
        let d_payload: GpuBuffer<u32> = self.gpu.alloc(total_words.max(1));
        self.gpu.launch("cuszx.pack", launch_blocks, 256u32, |blk| {
            let first_block = blk.block_linear() * warps_per_launch_block;
            blk.warps(|w| {
                let b = first_block + w.warp_id;
                if b >= nblocks {
                    return;
                }
                let base = w.load(&d_bases, |l| (l.id == 0).then_some(b))[0];
                let bits = w.load(&d_bits, |l| (l.id == 0).then_some(b))[0];
                if bits == 0 {
                    return; // constant block: base alone represents it
                }
                let off = w.load(&d_offsets, |l| (l.id == 0).then_some(b))[0] as usize;
                let g0 = b * BLOCK;
                let mut vals = [0.0f32; BLOCK];
                for half in 0..BLOCK / 32 {
                    let v = w.load(&d_input, |l| {
                        let g = g0 + half * 32 + l.id;
                        (g < n).then_some(g)
                    });
                    vals[half * 32..half * 32 + 32].copy_from_slice(&v);
                }
                // Quantize + pack. Each value costs ~2 ALU ops; the packing
                // writes bits serially within each output word.
                w.charge_alu(2 * BLOCK as u64 / 32 + 2 * bits as u64);
                let mut words: Vec<u32> = Vec::new();
                for (k, &v) in vals.iter().enumerate().take((n - g0).min(BLOCK)) {
                    let q = (((v - base) as f64 / ebx2).round() as i64).clamp(0, (1i64 << bits) - 1)
                        as u32;
                    bitpack::put(&mut words, k, bits, q);
                }
                words.resize(block_words(bits), 0);
                w.store(&d_payload, |l| (l.id < words.len()).then(|| (off + l.id, words[l.id])));
                // Wide blocks (> 32 words) need a second store wave.
                if words.len() > 32 {
                    w.store(&d_payload, |l| {
                        (32 + l.id < words.len()).then(|| (off + 32 + l.id, words[32 + l.id]))
                    });
                }
            });
        });

        CuSzxStream {
            shape,
            eb: eb_abs,
            bases: d_bases.to_vec(),
            bits: d_bits.to_vec(),
            payload: d_payload.to_vec()[..total_words].to_vec(),
            n_values: n,
        }
    }

    /// Decompress (host reference path).
    pub fn decompress(&self, stream: &CuSzxStream) -> Vec<f32> {
        let n = stream.n_values;
        let ebx2 = 2.0 * stream.eb;
        let mut out = vec![0.0f32; n];
        let mut off = 0usize;
        for (b, (&base, &bits)) in stream.bases.iter().zip(&stream.bits).enumerate() {
            let lo = b * BLOCK;
            let hi = ((b + 1) * BLOCK).min(n);
            if bits == 0 {
                // Constant block: base represents every value (the paper's
                // "constant blocks handled separately").
                for v in &mut out[lo..hi] {
                    *v = base;
                }
            } else {
                let words = &stream.payload[off..off + block_words(bits)];
                for (k, v) in out[lo..hi].iter_mut().enumerate() {
                    let q = bitpack::get(words, k, bits);
                    *v = (base as f64 + q as f64 * ebx2) as f32;
                }
                off += block_words(bits);
            }
        }
        out
    }

    /// Modeled kernel time of the last compress, seconds.
    pub fn kernel_time(&self) -> f64 {
        self.gpu.kernel_time()
    }

    /// The underlying device (timeline inspection).
    pub fn gpu(&self) -> &fzgpu_sim::Gpu {
        &self.gpu
    }

    /// Snapshot the last compress's timeline as a profile (per-kernel
    /// attribution, Chrome-trace export).
    pub fn profile(&self) -> fzgpu_sim::Profile {
        fzgpu_sim::Profile::capture(&self.gpu)
    }
}

impl Baseline for CuSzx {
    fn name(&self) -> &'static str {
        "cuSZx"
    }

    fn run(&mut self, data: &[f32], shape: Shape, setting: Setting) -> Option<Run> {
        let Setting::Eb(eb) = setting else {
            return None;
        };
        let eb_abs = resolve_eb(data, eb);
        let stream = self.compress(data, shape, eb_abs);
        let reconstructed = self.decompress(&stream);
        Some(Run {
            name: self.name(),
            compressed_bytes: stream.size_bytes(),
            compress_time: self.kernel_time(),
            reconstructed,
            codebook_time: 0.0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fzgpu_sim::device::A100;

    #[test]
    fn roundtrip_respects_bound() {
        let data: Vec<f32> =
            (0..10_000).map(|i| (i as f32 * 0.02).sin() * 7.0 + (i as f32 * 0.13).cos()).collect();
        let eb = 1e-3;
        let mut x = CuSzx::new(A100);
        let stream = x.compress(&data, (1, 1, 10_000), eb);
        let back = x.decompress(&stream);
        for (i, (&a, &b)) in data.iter().zip(&back).enumerate() {
            let slack = (a.abs() as f64) * 1e-6 + 1e-12;
            assert!((a as f64 - b as f64).abs() <= eb + slack, "idx {i}: {a} vs {b}");
        }
    }

    #[test]
    fn constant_field_collapses_to_bases() {
        let data = vec![2.5f32; 64 * 100];
        let mut x = CuSzx::new(A100);
        let stream = x.compress(&data, (1, 1, 6400), 1e-3);
        assert!(stream.bits.iter().all(|&b| b == 0));
        assert!(stream.payload.is_empty());
        assert!(x.decompress(&stream).iter().all(|&v| v == 2.5));
        let ratio = (data.len() * 4) as f64 / stream.size_bytes() as f64;
        assert!(ratio > 40.0, "ratio {ratio}");
    }

    #[test]
    fn rough_data_gets_wide_blocks_and_low_ratio() {
        let data: Vec<f32> =
            (0..6400u32).map(|i| (i.wrapping_mul(2654435761) >> 8) as f32 / 1e6).collect();
        let mut x = CuSzx::new(A100);
        let stream = x.compress(&data, (1, 1, 6400), 1e-4);
        let ratio = (data.len() * 4) as f64 / stream.size_bytes() as f64;
        assert!(ratio < 4.0, "rough data should not compress well, got {ratio}");
        // Still error-bounded.
        let back = x.decompress(&stream);
        for (&a, &b) in data.iter().zip(&back) {
            assert!((a as f64 - b as f64).abs() <= 1e-4 + (a.abs() as f64) * 1e-6 + 1e-9);
        }
    }

    #[test]
    fn ragged_tail_block_roundtrips() {
        let data: Vec<f32> = (0..100).map(|i| i as f32 * 0.5).collect();
        let mut x = CuSzx::new(A100);
        let stream = x.compress(&data, (1, 1, 100), 1e-2);
        let back = x.decompress(&stream);
        assert_eq!(back.len(), 100);
        for (&a, &b) in data.iter().zip(&back) {
            assert!((a - b).abs() <= 0.011);
        }
    }
}
