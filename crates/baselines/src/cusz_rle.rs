//! cuSZ+RLE: the related-work variant (Tian et al., CLUSTER '21, cited in
//! §5) that replaces cuSZ's Huffman stage with run-length encoding to lift
//! the 32x ratio cap in high-error-bound scenarios.
//!
//! Shares the dual-quantization (v1) front end with [`crate::cusz::CuSz`];
//! the encoding stage swaps Huffman's per-symbol entropy pricing for runs,
//! which wins when the quantization codes collapse to long constant
//! stretches (large bounds, smooth or zero-heavy data) and loses when the
//! codes alternate.

use fzgpu_codecs::rle;
use fzgpu_core::gpu::quant::{pred_quant_v1, V1_RADIUS};
use fzgpu_core::lorenzo::{self, Shape};
use fzgpu_sim::{DeviceSpec, Gpu, KernelStats};

use crate::common::{resolve_eb, Baseline, Run, Setting};

/// RLE encode throughput model, bytes/second on A100 (a scan-based GPU RLE
/// runs near memory bandwidth; calibrated conservatively).
const RLE_ENC_A100: f64 = 200.0e9;

/// The cuSZ+RLE compressor.
pub struct CuSzRle {
    gpu: Gpu,
    spec: DeviceSpec,
}

/// A cuSZ+RLE stream.
pub struct CuSzRleStream {
    /// Field shape.
    pub shape: Shape,
    /// Absolute bound.
    pub eb: f64,
    /// Run-length pairs over the quantization codes.
    pub runs: Vec<rle::Run>,
    /// Outliers as (index, quantized delta).
    pub outliers: Vec<(u32, i32)>,
    /// Value count.
    pub n_values: usize,
}

impl CuSzRleStream {
    /// Compressed bytes (6 B per run + 8 B per outlier + header).
    pub fn size_bytes(&self) -> usize {
        rle::encoded_bytes(&self.runs) + self.outliers.len() * 8 + 64
    }
}

impl CuSzRle {
    /// New instance.
    pub fn new(spec: DeviceSpec) -> Self {
        Self { gpu: Gpu::new(spec), spec }
    }

    /// Compress under an absolute bound.
    pub fn compress(&mut self, data: &[f32], shape: Shape, eb_abs: f64) -> CuSzRleStream {
        let n = data.len();
        let d_input = self.gpu.upload(data);
        self.gpu.reset_timeline();
        let (d_codes, d_outliers) = pred_quant_v1(&mut self.gpu, &d_input, shape, eb_abs);

        // Outliers: host-side gather (same content as cuSZ's device path;
        // charge one streaming pass).
        let outlier_vec = d_outliers.to_vec();
        let outliers: Vec<(u32, i32)> = outlier_vec
            .iter()
            .enumerate()
            .filter(|&(_, &v)| v != 0)
            .map(|(i, &v)| (i as u32, v))
            .collect();
        let mut gather_stats = KernelStats::default();
        gather_stats.global_bytes_requested = (n * 4) as u64;
        gather_stats.global_sectors = gather_stats.global_bytes_requested / 32;
        self.gpu.record_kernel(
            "cusz_rle.gather_outliers",
            gather_stats.global_bytes_moved() as f64 / self.spec.effective_bandwidth(),
            gather_stats,
        );

        // RLE encode (bit-exact host, charged at the scan-based GPU rate).
        let codes = d_codes.to_vec();
        let runs = rle::encode(&codes);
        let rate = RLE_ENC_A100 * self.spec.mem_bandwidth / fzgpu_sim::device::A100.mem_bandwidth;
        self.gpu.record_kernel("cusz_rle.encode", (n * 2) as f64 / rate, KernelStats::default());

        CuSzRleStream { shape, eb: eb_abs, runs, outliers, n_values: n }
    }

    /// Decompress.
    pub fn decompress(&self, stream: &CuSzRleStream) -> Vec<f32> {
        let codes = rle::decode(&stream.runs);
        assert_eq!(codes.len(), stream.n_values, "run lengths disagree with value count");
        let mut deltas: Vec<i32> =
            codes.iter().map(|&c| if c == 0 { 0 } else { c as i32 - V1_RADIUS }).collect();
        for &(idx, val) in &stream.outliers {
            deltas[idx as usize] = val;
        }
        lorenzo::integrate(&mut deltas, stream.shape);
        let ebx2 = 2.0 * stream.eb;
        deltas.into_iter().map(|q| (q as f64 * ebx2) as f32).collect()
    }

    /// Modeled kernel time of the last compress.
    pub fn kernel_time(&self) -> f64 {
        self.gpu.kernel_time()
    }

    /// The underlying device (timeline inspection).
    pub fn gpu(&self) -> &fzgpu_sim::Gpu {
        &self.gpu
    }

    /// Snapshot the last compress's timeline as a profile (per-kernel
    /// attribution, Chrome-trace export).
    pub fn profile(&self) -> fzgpu_sim::Profile {
        fzgpu_sim::Profile::capture(&self.gpu)
    }
}

impl Baseline for CuSzRle {
    fn name(&self) -> &'static str {
        "cuSZ+RLE"
    }

    fn run(&mut self, data: &[f32], shape: Shape, setting: Setting) -> Option<Run> {
        let Setting::Eb(eb) = setting else {
            return None;
        };
        let eb_abs = resolve_eb(data, eb);
        let stream = self.compress(data, shape, eb_abs);
        let reconstructed = self.decompress(&stream);
        Some(Run {
            name: self.name(),
            compressed_bytes: stream.size_bytes(),
            compress_time: self.kernel_time(),
            reconstructed,
            codebook_time: 0.0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cusz::CuSz;
    use fzgpu_sim::device::A100;

    fn smooth(n: usize) -> Vec<f32> {
        (0..n).map(|i| (i as f32 * 0.004).sin() * 3.0).collect()
    }

    #[test]
    fn roundtrip_within_bound() {
        let data = smooth(20_000);
        let shape = (1, 1, 20_000);
        let eb = 1e-3;
        let mut c = CuSzRle::new(A100);
        let s = c.compress(&data, shape, eb);
        let back = c.decompress(&s);
        for (&a, &b) in data.iter().zip(&back) {
            assert!((a as f64 - b as f64).abs() <= eb + (a.abs() as f64) * 1e-6 + 1e-12);
        }
    }

    #[test]
    fn beats_huffman_cap_on_constant_data() {
        // All-zero field at a large bound: Huffman caps at 32x; RLE's two
        // runs-worth of bytes blow straight past it.
        let data = vec![0.0f32; 1 << 17];
        let shape = (1, 1, 1 << 17);
        let mut rle_c = CuSzRle::new(A100);
        let s = rle_c.compress(&data, shape, 1e-2);
        let rle_ratio = (data.len() * 4) as f64 / s.size_bytes() as f64;
        let mut huff_c = CuSz::new(A100);
        let hs = huff_c.compress(&data, shape, 1e-2);
        let huff_ratio = (data.len() * 4) as f64 / hs.size_bytes() as f64;
        assert!(huff_ratio <= 32.0);
        assert!(rle_ratio > 100.0, "rle ratio {rle_ratio}");
        assert!(rle_ratio > 3.0 * huff_ratio);
    }

    #[test]
    fn loses_to_huffman_on_alternating_codes() {
        // Data whose deltas alternate sign every element: runs of length 1.
        let data: Vec<f32> = (0..32_768).map(|i| if i % 2 == 0 { 0.0 } else { 0.01 }).collect();
        let shape = (1, 1, 32_768);
        let mut rle_c = CuSzRle::new(A100);
        let s = rle_c.compress(&data, shape, 1e-3);
        let rle_ratio = (data.len() * 4) as f64 / s.size_bytes() as f64;
        let mut huff_c = CuSz::new(A100);
        let hs = huff_c.compress(&data, shape, 1e-3);
        let huff_ratio = (data.len() * 4) as f64 / hs.size_bytes() as f64;
        assert!(huff_ratio > rle_ratio, "huff {huff_ratio} vs rle {rle_ratio}");
    }

    #[test]
    fn exact_on_outliers() {
        let mut data = smooth(8192);
        data[4096] = 1e3;
        let shape = (1, 1, 8192);
        let mut c = CuSzRle::new(A100);
        let s = c.compress(&data, shape, 1e-3);
        assert!(!s.outliers.is_empty());
        let back = c.decompress(&s);
        assert!((back[4096] as f64 - 1e3).abs() <= 1e-3 + 1e3 * 1e-6);
    }
}
