//! SZ-OMP baseline: the CPU SZ pipeline (prediction + quantization +
//! Huffman) with rayon standing in for OpenMP.
//!
//! Mirrors the paper's constraints: SZ's OpenMP mode "only supports 3D
//! data", so non-3D shapes are rejected. Wall-clock time of this path is
//! measured for the §4.4 FZ-OMP-vs-SZ-OMP comparison.

use fzgpu_codecs::huffman::{self, Codebook};
use fzgpu_core::lorenzo::{self, rank_of, Shape};
use rayon::prelude::*;

use crate::common::{resolve_eb, Baseline, Run, Setting};

/// Quantization radius (matches the cuSZ baseline).
const RADIUS: i32 = 512;
/// Symbols in the codebook.
const NUM_SYMBOLS: usize = 1024;
/// Coarse chunk size for parallel Huffman encoding.
const CHUNK: usize = 4096;

/// The SZ-OMP compressor.
#[derive(Debug, Default, Clone, Copy)]
pub struct SzOmp;

/// An SZ-OMP stream.
pub struct SzOmpStream {
    /// Field shape.
    pub shape: Shape,
    /// Absolute bound.
    pub eb: f64,
    /// Canonical codebook.
    pub book: Codebook,
    /// Chunked Huffman payload.
    pub encoded: huffman::ChunkedStream,
    /// Outliers as (index, quantized delta).
    pub outliers: Vec<(u32, i32)>,
}

impl SzOmpStream {
    /// Compressed bytes.
    pub fn size_bytes(&self) -> usize {
        self.encoded.size_bytes() + NUM_SYMBOLS + self.outliers.len() * 8 + 64
    }
}

impl SzOmp {
    /// Compress a 3D field. `None` for non-3D shapes.
    pub fn compress(&self, data: &[f32], shape: Shape, eb_abs: f64) -> Option<SzOmpStream> {
        if rank_of(shape) != 3 {
            return None; // "SZ-OMP only supports 3D data"
        }
        // Prediction + quantization (shared Lorenzo machinery), v1-style
        // radius split with outliers.
        let q = lorenzo::prequant(data, eb_abs);
        let deltas = lorenzo::lorenzo_delta(&q, shape);
        let codes: Vec<u16> = deltas
            .par_iter()
            .map(|&d| if d > -RADIUS && d < RADIUS { (d + RADIUS) as u16 } else { 0 })
            .collect();
        let outliers: Vec<(u32, i32)> = deltas
            .par_iter()
            .enumerate()
            .filter(|&(_, &d)| d <= -RADIUS || d >= RADIUS)
            .map(|(i, &d)| (i as u32, d))
            .collect();

        // Histogram (parallel fold) + codebook + chunked encode.
        let hist = codes
            .par_chunks(1 << 16)
            .fold(
                || vec![0u32; NUM_SYMBOLS],
                |mut h, chunk| {
                    for &c in chunk {
                        h[c as usize] += 1;
                    }
                    h
                },
            )
            .reduce(
                || vec![0u32; NUM_SYMBOLS],
                |mut a, b| {
                    for (x, y) in a.iter_mut().zip(&b) {
                        *x += y;
                    }
                    a
                },
            );
        let book = Codebook::from_histogram(&hist).ok()?;
        // Parallel per-chunk encode, then stitch offsets.
        let chunks: Vec<Vec<u8>> = codes
            .par_chunks(CHUNK)
            .map(|c| huffman::encode(&book, c).expect("codes fit book"))
            .collect();
        let mut payload = Vec::new();
        let mut offsets = vec![0u32];
        for c in &chunks {
            payload.extend_from_slice(c);
            offsets.push(payload.len() as u32);
        }
        let encoded = huffman::ChunkedStream {
            payload,
            offsets,
            chunk_symbols: CHUNK,
            total_symbols: codes.len(),
        };
        Some(SzOmpStream { shape, eb: eb_abs, book, encoded, outliers })
    }

    /// Decompress.
    pub fn decompress(&self, stream: &SzOmpStream) -> Vec<f32> {
        let codes = huffman::decode_chunked(&stream.book, &stream.encoded).expect("valid stream");
        let mut deltas: Vec<i32> =
            codes.par_iter().map(|&c| if c == 0 { 0 } else { c as i32 - RADIUS }).collect();
        for &(idx, val) in &stream.outliers {
            deltas[idx as usize] = val;
        }
        lorenzo::integrate(&mut deltas, stream.shape);
        let ebx2 = 2.0 * stream.eb;
        deltas.into_par_iter().map(|q| (q as f64 * ebx2) as f32).collect()
    }
}

impl Baseline for SzOmp {
    fn name(&self) -> &'static str {
        "SZ-OMP"
    }

    fn run(&mut self, data: &[f32], shape: Shape, setting: Setting) -> Option<Run> {
        let Setting::Eb(eb) = setting else {
            return None;
        };
        let eb_abs = resolve_eb(data, eb);
        let t0 = std::time::Instant::now();
        let stream = self.compress(data, shape, eb_abs)?;
        let compress_time = t0.elapsed().as_secs_f64();
        let reconstructed = self.decompress(&stream);
        Some(Run {
            name: self.name(),
            compressed_bytes: stream.size_bytes(),
            compress_time,
            reconstructed,
            codebook_time: 0.0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field_3d(nz: usize, ny: usize, nx: usize) -> Vec<f32> {
        (0..nz * ny * nx)
            .map(|i| {
                let z = i / (ny * nx);
                let y = i / nx % ny;
                let x = i % nx;
                (x as f32 * 0.1).sin() + (y as f32 * 0.07).cos() + (z as f32 * 0.2).sin()
            })
            .collect()
    }

    #[test]
    fn roundtrip_respects_bound() {
        let shape = (8, 24, 32);
        let data = field_3d(8, 24, 32);
        let eb = 1e-3;
        let sz = SzOmp;
        let s = sz.compress(&data, shape, eb).unwrap();
        let back = sz.decompress(&s);
        for (i, (&a, &b)) in data.iter().zip(&back).enumerate() {
            let slack = (a.abs() as f64) * 1e-6 + 1e-12;
            assert!((a as f64 - b as f64).abs() <= eb + slack, "idx {i}");
        }
    }

    #[test]
    fn rejects_non_3d() {
        let sz = SzOmp;
        assert!(sz.compress(&vec![0.0; 100], (1, 1, 100), 1e-3).is_none());
        assert!(sz.compress(&vec![0.0; 100], (1, 10, 10), 1e-3).is_none());
    }

    #[test]
    fn outliers_reconstruct_exactly() {
        let mut data = field_3d(4, 16, 16);
        data[500] = 1e4; // violent outlier
        let shape = (4, 16, 16);
        let sz = SzOmp;
        let s = sz.compress(&data, shape, 1e-3).unwrap();
        assert!(!s.outliers.is_empty());
        let back = sz.decompress(&s);
        assert!((data[500] as f64 - back[500] as f64).abs() <= 1e-3 + 1e4f64 * 1e-6);
    }

    #[test]
    fn smooth_3d_compresses() {
        let shape = (8, 32, 32);
        let data = field_3d(8, 32, 32);
        let sz = SzOmp;
        let s = sz.compress(&data, shape, 1e-2).unwrap();
        let ratio = (data.len() * 4) as f64 / s.size_bytes() as f64;
        assert!(ratio > 3.0, "ratio {ratio}");
    }
}
