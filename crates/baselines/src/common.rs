//! Shared interface for all compressors under evaluation.

use fzgpu_core::lorenzo::Shape;
use fzgpu_core::quant::ErrorBound;

/// How a compressor is configured for one run. Error-bounded compressors
/// take [`Setting::Eb`]; cuZFP only supports [`Setting::Rate`] (the paper's
/// central criticism of it).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Setting {
    /// Error-bounded mode.
    Eb(ErrorBound),
    /// Fixed-rate mode: bits per value.
    Rate(f64),
}

/// Result of one compress (+ decompress) run.
#[derive(Debug, Clone)]
pub struct Run {
    /// Compressor name.
    pub name: &'static str,
    /// Compressed size in bytes.
    pub compressed_bytes: usize,
    /// Modeled GPU kernel time (or measured CPU wall time) of compression,
    /// seconds.
    pub compress_time: f64,
    /// Reconstructed field (for distortion metrics).
    pub reconstructed: Vec<f32>,
    /// Time attributable to Huffman-codebook construction (cuSZ only;
    /// subtracting it gives the paper's `cuSZ-ncb` bars).
    pub codebook_time: f64,
}

impl Run {
    /// Compression ratio against f32 input of `n` values.
    pub fn ratio(&self, n: usize) -> f64 {
        (n * 4) as f64 / self.compressed_bytes as f64
    }

    /// Compression throughput in GB/s.
    pub fn throughput_gbps(&self, n: usize) -> f64 {
        (n * 4) as f64 / self.compress_time / 1e9
    }

    /// Throughput excluding codebook build (cuSZ-ncb).
    pub fn throughput_ncb_gbps(&self, n: usize) -> f64 {
        (n * 4) as f64 / (self.compress_time - self.codebook_time) / 1e9
    }
}

/// A compressor that can be driven by the benchmark harness.
pub trait Baseline {
    /// Display name (paper's naming).
    fn name(&self) -> &'static str;

    /// Compress + decompress `data`; `None` when this compressor does not
    /// support the configuration (e.g. MGARD-GPU on 1D data, error-bounded
    /// settings on cuZFP).
    fn run(&mut self, data: &[f32], shape: Shape, setting: Setting) -> Option<Run>;
}

/// Resolve an [`ErrorBound`] against the data (host-side range scan).
pub fn resolve_eb(data: &[f32], eb: ErrorBound) -> f64 {
    match eb {
        ErrorBound::Abs(e) => e,
        ErrorBound::RelToRange(_) => {
            let lo = data.iter().copied().fold(f32::INFINITY, f32::min);
            let hi = data.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            eb.to_abs((hi - lo) as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_metrics() {
        let r = Run {
            name: "x",
            compressed_bytes: 1000,
            compress_time: 1e-3,
            reconstructed: vec![],
            codebook_time: 5e-4,
        };
        assert_eq!(r.ratio(1000), 4.0);
        assert!((r.throughput_gbps(1000) - 0.004).abs() < 1e-12);
        assert!(r.throughput_ncb_gbps(1000) > r.throughput_gbps(1000));
    }

    #[test]
    fn resolve_relative_bound() {
        let data = vec![0.0f32, 10.0];
        assert!((resolve_eb(&data, ErrorBound::RelToRange(1e-2)) - 0.1).abs() < 1e-9);
        assert_eq!(resolve_eb(&data, ErrorBound::Abs(0.5)), 0.5);
    }
}
