//! cuSZ baseline: dual-quantization (original, radius + outliers) followed
//! by GPU histogram, Huffman-codebook construction, and coarse-grained
//! chunked Huffman encoding (§2.2–2.3 of the paper).
//!
//! Execution strategy (see DESIGN.md):
//! - dual-quant v1, outlier compaction, and the symbol histogram run as
//!   real kernels on the simulator (bit-exact, roofline-timed);
//! - the Huffman codebook build and the coarse encode run bit-exactly on
//!   the host (via `fzgpu_codecs::huffman`), and are *charged to the
//!   timeline with literature-calibrated analytic models*: the serial
//!   codebook build costs a near-constant few milliseconds independent of
//!   data size (this constant is exactly why cuSZ craters on the small
//!   CESM fields — paper §4.4), and the encode stage moves at a rate calibrated
//!   so cuSZ-ncb lands at roughly half of FZ-GPU's throughput (the ratio
//!   the paper reports in §4.4), scaled by device bandwidth.

use fzgpu_codecs::huffman::{self, Codebook};
use fzgpu_core::gpu::quant::{pred_quant_v1, V1_RADIUS};
use fzgpu_core::lorenzo::{self, Shape};
use fzgpu_sim::device::A100;
use fzgpu_sim::histogram::histogram_u16;
use fzgpu_sim::scan::exclusive_sum;
use fzgpu_sim::{DeviceSpec, Gpu, GpuBuffer, KernelStats};

use crate::common::{resolve_eb, Baseline, Run, Setting};

/// Symbols in the Huffman alphabet (codes 0..1024; 0 marks an outlier).
const NUM_SYMBOLS: usize = 1024;
/// Symbols per coarse-grained encode chunk.
const CHUNK: usize = 4096;
/// Serial codebook-build cost in scalar cycles (~0.9 ms on A100's 1.41 GHz
/// scheduler — the near-constant the `cuSZ-ncb` bars subtract, calibrated
/// so full-scale cuSZ throughputs land in the paper's Fig. 8 range).
const CODEBOOK_CYCLES: f64 = 1.0e6;
/// Huffman encode throughput on A100 (paper Fig. 1), bytes/second.
const HUFF_ENC_A100: f64 = 90.0e9;

/// The cuSZ compressor on a simulated device.
pub struct CuSz {
    gpu: Gpu,
    spec: DeviceSpec,
}

/// A cuSZ compressed stream (kept structured; cuSZ's on-disk format is an
/// archive of these sections).
pub struct CuSzStream {
    /// Shape + bound for reconstruction.
    pub shape: Shape,
    /// Absolute error bound.
    pub eb: f64,
    /// Canonical codebook (serialized as its length table).
    pub book: Codebook,
    /// Chunked Huffman payload.
    pub encoded: huffman::ChunkedStream,
    /// Outliers as (index, quantized delta) pairs.
    pub outliers: Vec<(u32, i32)>,
}

impl CuSzStream {
    /// Total compressed bytes: payload + chunk offsets + codebook lengths +
    /// outlier pairs + header.
    pub fn size_bytes(&self) -> usize {
        self.encoded.size_bytes() + NUM_SYMBOLS + self.outliers.len() * 8 + 64
    }
}

impl CuSz {
    /// New instance on the given device.
    pub fn new(spec: DeviceSpec) -> Self {
        Self { gpu: Gpu::new(spec), spec }
    }

    /// Compress. Returns the stream and leaves per-kernel times on the
    /// internal timeline ([`CuSz::kernel_time`], [`CuSz::codebook_time`]).
    pub fn compress(&mut self, data: &[f32], shape: Shape, eb_abs: f64) -> CuSzStream {
        let n = data.len();
        let d_input = self.gpu.upload(data);
        self.gpu.reset_timeline();

        // Stage 1: original dual-quantization (codes + dense outliers).
        let (d_codes, d_outliers) = pred_quant_v1(&mut self.gpu, &d_input, shape, eb_abs);

        // Stage 2: outlier compaction (flag, scan, gather) — the extra
        // traffic FZ-GPU's v2 kernel eliminates.
        let outliers = self.compact_outliers(&d_outliers);

        // Stage 3: symbol histogram on device.
        let d_hist = histogram_u16(&mut self.gpu, &d_codes, n, NUM_SYMBOLS);
        let hist = d_hist.to_vec();

        // Stage 4: codebook build — serial tree construction, charged at
        // the device's scalar rate (near-constant, data-size independent).
        let book = Codebook::from_histogram(&hist).expect("non-empty field");
        let cb_time = CODEBOOK_CYCLES / self.gpu.scalar_rate();
        self.gpu.record_kernel("cusz.build_codebook", cb_time, KernelStats::default());

        // Stage 5: coarse-grained chunked encode (bit-exact on host,
        // charged at the literature rate scaled by memory bandwidth).
        let codes = d_codes.to_vec();
        let encoded = huffman::encode_chunked(&book, &codes, CHUNK).expect("codes fit codebook");
        let enc_rate = HUFF_ENC_A100 * self.spec.mem_bandwidth / A100.mem_bandwidth;
        let enc_time = (n * 2) as f64 / enc_rate;
        let mut enc_stats = KernelStats::default();
        enc_stats.global_bytes_requested = (n * 2 + encoded.payload.len()) as u64;
        enc_stats.global_sectors = enc_stats.global_bytes_requested / 32;
        self.gpu.record_kernel("cusz.huffman_encode", enc_time, enc_stats);

        CuSzStream { shape, eb: eb_abs, book, encoded, outliers }
    }

    /// Decompress (host-side reference path; the paper never times cuSZ
    /// decompression and neither do our figures).
    pub fn decompress(&self, stream: &CuSzStream) -> Vec<f32> {
        let codes = huffman::decode_chunked(&stream.book, &stream.encoded).expect("valid stream");
        let mut deltas: Vec<i32> =
            codes.iter().map(|&c| if c == 0 { 0 } else { c as i32 - V1_RADIUS }).collect();
        for &(idx, val) in &stream.outliers {
            deltas[idx as usize] = val;
        }
        lorenzo::integrate(&mut deltas, stream.shape);
        let ebx2 = 2.0 * stream.eb;
        deltas.into_iter().map(|q| (q as f64 * ebx2) as f32).collect()
    }

    /// Modeled kernel time of the last compress, seconds.
    pub fn kernel_time(&self) -> f64 {
        self.gpu.kernel_time()
    }

    /// The device timeline of the last compress (Fig. 1 breakdowns).
    pub fn timeline(&self) -> &[fzgpu_sim::Event] {
        self.gpu.timeline()
    }

    /// The underlying device (timeline inspection).
    pub fn gpu(&self) -> &fzgpu_sim::Gpu {
        &self.gpu
    }

    /// Snapshot the last compress's timeline as a profile (per-kernel
    /// attribution, Chrome-trace export).
    pub fn profile(&self) -> fzgpu_sim::Profile {
        fzgpu_sim::Profile::capture(&self.gpu)
    }

    /// The codebook-build share of the last compress (for cuSZ-ncb).
    pub fn codebook_time(&self) -> f64 {
        self.gpu
            .timeline()
            .iter()
            .filter_map(|e| match e {
                fzgpu_sim::Event::Kernel(k) if k.name == "cusz.build_codebook" => Some(k.time),
                _ => None,
            })
            .sum()
    }

    /// Flag + scan + gather the nonzero entries of the dense outlier array.
    fn compact_outliers(&mut self, d_outliers: &GpuBuffer<i32>) -> Vec<(u32, i32)> {
        let n = d_outliers.len();
        let flags: GpuBuffer<u32> = self.gpu.alloc(n);
        let blocks = n.div_ceil(256) as u32;
        self.gpu.launch("cusz.mark_outliers", blocks, 256u32, |blk| {
            let base = blk.block_linear() * 256;
            blk.warps(|w| {
                let v = w.load(d_outliers, |l| (base + l.ltid < n).then_some(base + l.ltid));
                w.store(&flags, |l| {
                    (base + l.ltid < n).then(|| (base + l.ltid, (v[l.id] != 0) as u32))
                });
            });
        });
        let offsets: GpuBuffer<u32> = self.gpu.alloc(n);
        let total = exclusive_sum(&mut self.gpu, &flags, &offsets, n) as usize;
        let idx_out: GpuBuffer<u32> = self.gpu.alloc(total.max(1));
        let val_out: GpuBuffer<i32> = self.gpu.alloc(total.max(1));
        self.gpu.launch("cusz.gather_outliers", blocks, 256u32, |blk| {
            let base = blk.block_linear() * 256;
            blk.warps(|w| {
                let v = w.load(d_outliers, |l| (base + l.ltid < n).then_some(base + l.ltid));
                let off = w.load(&offsets, |l| (base + l.ltid < n).then_some(base + l.ltid));
                w.store(&idx_out, |l| {
                    let i = base + l.ltid;
                    (i < n && v[l.id] != 0).then(|| (off[l.id] as usize, i as u32))
                });
                w.store(&val_out, |l| {
                    let i = base + l.ltid;
                    (i < n && v[l.id] != 0).then(|| (off[l.id] as usize, v[l.id]))
                });
            });
        });
        idx_out.to_vec().into_iter().zip(val_out.to_vec()).take(total).collect()
    }
}

impl Baseline for CuSz {
    fn name(&self) -> &'static str {
        "cuSZ"
    }

    fn run(&mut self, data: &[f32], shape: Shape, setting: Setting) -> Option<Run> {
        let Setting::Eb(eb) = setting else {
            return None; // cuSZ has no fixed-rate mode
        };
        let eb_abs = resolve_eb(data, eb);
        let stream = self.compress(data, shape, eb_abs);
        let reconstructed = self.decompress(&stream);
        Some(Run {
            name: self.name(),
            compressed_bytes: stream.size_bytes(),
            compress_time: self.kernel_time(),
            reconstructed,
            codebook_time: self.codebook_time(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fzgpu_core::quant::ErrorBound;
    use fzgpu_sim::device::A100;

    fn smooth(n: usize) -> Vec<f32> {
        (0..n).map(|i| (i as f32 * 0.01).sin() * 5.0 + (i as f32 * 0.0003).cos()).collect()
    }

    #[test]
    fn roundtrip_respects_bound_exactly_even_with_outliers() {
        // Include a violent step so outliers appear.
        let mut data = smooth(8192);
        data[4000] = 500.0;
        data[4001] = -500.0;
        let shape = (1, 1, 8192);
        let eb = 1e-3;
        let mut cusz = CuSz::new(A100);
        let stream = cusz.compress(&data, shape, eb);
        assert!(!stream.outliers.is_empty(), "expected outliers from the step");
        let back = cusz.decompress(&stream);
        for (i, (&a, &b)) in data.iter().zip(&back).enumerate() {
            let slack = (a.abs().max(b.abs()) as f64) * 1e-6 + 1e-12;
            assert!((a as f64 - b as f64).abs() <= eb + slack, "idx {i}");
        }
    }

    #[test]
    fn smooth_data_compresses_beyond_4x() {
        let data = smooth(65_536);
        let shape = (1, 1, 65_536);
        let mut cusz = CuSz::new(A100);
        let stream = cusz.compress(&data, shape, 1e-2);
        let ratio = (data.len() * 4) as f64 / stream.size_bytes() as f64;
        assert!(ratio > 4.0, "ratio {ratio}");
    }

    #[test]
    fn huffman_caps_ratio_at_32() {
        // All-zero data: every code is the same symbol -> 1 bit/symbol
        // minimum, so ratio <= 32 (paper: "upper bound of 32").
        let data = vec![0.0f32; 1 << 17];
        let shape = (1, 1, 1 << 17);
        let mut cusz = CuSz::new(A100);
        let stream = cusz.compress(&data, shape, 1e-3);
        let ratio = (data.len() * 4) as f64 / stream.size_bytes() as f64;
        assert!(ratio <= 32.0, "ratio {ratio}");
        assert!(ratio > 20.0, "ratio {ratio} should approach the cap");
    }

    #[test]
    fn codebook_time_is_data_size_independent() {
        let mut cusz = CuSz::new(A100);
        let small = smooth(4096);
        let _ = cusz.compress(&small, (1, 1, 4096), 1e-3);
        let t_small = cusz.codebook_time();
        let big = smooth(1 << 17);
        let _ = cusz.compress(&big, (1, 1, 1 << 17), 1e-3);
        let t_big = cusz.codebook_time();
        assert!((t_small - t_big).abs() < 1e-9);
        assert!(t_small > 5e-4, "codebook should cost ~a millisecond, got {t_small}");
    }

    #[test]
    fn baseline_trait_rejects_rate_mode() {
        let mut cusz = CuSz::new(A100);
        assert!(cusz.run(&smooth(1024), (1, 1, 1024), Setting::Rate(8.0)).is_none());
        let run = cusz
            .run(&smooth(1024), (1, 1, 1024), Setting::Eb(ErrorBound::RelToRange(1e-3)))
            .unwrap();
        assert_eq!(run.name, "cuSZ");
        assert!(run.codebook_time > 0.0);
        assert!(run.compress_time > run.codebook_time);
    }
}
