//! # fzgpu-baselines — every compressor the paper compares against,
//! reimplemented from scratch
//!
//! - [`cusz`] — cuSZ: dual-quantization (radius + outliers) + GPU histogram
//!   + Huffman codebook + coarse chunked encoding. `cuSZ-ncb` falls out by
//!     subtracting [`cusz::CuSz::codebook_time`].
//! - [`cusz_rle`] — the CLUSTER'21 cuSZ+RLE variant (run-length encoding in
//!   place of Huffman, lifting the 32x cap at high bounds).
//! - [`cuzfp`] — cuZFP: fixed-rate block transform coding (block floating
//!   point, reversible lifting, negabinary, bit-plane truncation).
//! - [`cuszx`] — cuSZx: blockwise constant/non-constant bitwise compressor.
//! - [`mgard`] — MGARD-GPU: multigrid refactoring + level quantization +
//!   DEFLATE.
//! - [`sz_omp`] — SZ-OMP: the CPU SZ pipeline under rayon.
//!
//! All implement [`common::Baseline`] so the bench harness can sweep them
//! uniformly.

pub mod common;
pub mod cusz;
pub mod cusz_rle;
pub mod cuszx;
pub mod cuzfp;
pub mod mgard;
pub mod sz_omp;

pub use common::{resolve_eb, Baseline, Run, Setting};
pub use cusz::CuSz;
pub use cusz_rle::CuSzRle;
pub use cuszx::CuSzx;
pub use cuzfp::CuZfp;
pub use mgard::Mgard;
pub use sz_omp::SzOmp;

/// Canonical CLI/registry names of the baseline compressors, matching the
/// `fzgpu-store` codec registry.
pub const BASELINE_NAMES: [&str; 6] = ["cusz", "cusz-rle", "cuszx", "cuzfp", "mgard", "sz-omp"];

/// Build a baseline by its canonical name. The single dispatch point for
/// name-keyed construction — the bench harness and the store codec
/// registry both route through names rather than concrete types.
pub fn by_name(name: &str, spec: fzgpu_sim::DeviceSpec) -> Option<Box<dyn Baseline>> {
    match name {
        "cusz" => Some(Box::new(CuSz::new(spec))),
        "cusz-rle" => Some(Box::new(CuSzRle::new(spec))),
        "cuszx" => Some(Box::new(CuSzx::new(spec))),
        "cuzfp" => Some(Box::new(CuZfp::new(spec))),
        "mgard" => Some(Box::new(Mgard::new(spec))),
        "sz-omp" => Some(Box::new(SzOmp)),
        _ => None,
    }
}
