//! MGARD-GPU baseline: multigrid hierarchical data refactoring +
//! level-wise quantization + DEFLATE lossless.
//!
//! Simplified but structurally faithful MGARD (Ainsworth et al.): a
//! multilevel decomposition where each level predicts the fine-grid points
//! by multilinear interpolation of the coarse grid and stores the residual
//! coefficients; coefficients are uniformly quantized with a per-level
//! budget summing to the user bound, then DEFLATE-compressed (the paper:
//! "MGARD-GPU uses DEFLATE — Huffman + LZ77 — on the CPU, causing low
//! throughput").
//!
//! Behavioural fidelity to the paper's observations:
//! - conservative per-level budgets make MGARD *over-preserve* distortion
//!   (higher PSNR than requested — §4.3);
//! - 1D inputs are rejected ("MGARD-GPU cannot work correctly on 1D
//!   datasets due to memory issues");
//! - when the "compressed" stream exceeds the original size the run fails
//!   (the QMCPACK 1e-4 failure in §4.3);
//! - timing combines a modeled multi-pass GPU refactor (strided, low
//!   efficiency) with CPU-side DEFLATE at a measured-calibrated rate —
//!   throughput lands in the 0.1–1 GB/s regime and barely improves from
//!   A4000 to A100, matching §4.4.

use fzgpu_codecs::deflate;
use fzgpu_core::lorenzo::{rank_of, Shape};
use fzgpu_sim::{DeviceSpec, KernelStats};

use crate::common::{resolve_eb, Baseline, Run, Setting};

/// CPU DEFLATE throughput used for the timing model, bytes/second
/// (single-stream zlib-class rate; the dominant cost the paper measures).
const DEFLATE_RATE: f64 = 1.6e9;
/// Fraction of peak bandwidth a strided multigrid refactor achieves
/// (latency-bound gather/scatter passes; explains the poor A4000->A100
/// scaling the paper notes).
const REFACTOR_EFFICIENCY: f64 = 0.05;

/// MGARD-GPU stand-in.
pub struct Mgard {
    spec: DeviceSpec,
    last_time: f64,
}

/// An MGARD stream.
pub struct MgardStream {
    /// Field shape.
    pub shape: Shape,
    /// Per-coefficient quantization step used at every level.
    pub step: f64,
    /// Number of multigrid levels.
    pub levels: usize,
    /// DEFLATE-compressed quantized coefficients.
    pub compressed: Vec<u8>,
}

impl MgardStream {
    /// Compressed bytes.
    pub fn size_bytes(&self) -> usize {
        self.compressed.len() + 64
    }
}

/// Number of grid points along an axis of length `n` at stride `s`
/// (points at original indices `0, s, 2s, ...`).
#[inline]
fn grid_at(n: usize, s: usize) -> usize {
    if n <= 1 {
        1
    } else {
        (n - 1) / s + 1
    }
}

/// Multilevel forward refactor: replaces fine points with interpolation
/// residuals level by level. Level `l` operates on the grid of points at
/// original stride `2^l`.
fn refactor(data: &mut [f32], shape: Shape, levels: usize) {
    let (nz, ny, nx) = shape;
    for l in 0..levels {
        let s = 1usize << l;
        let grid = (grid_at(nz, s), grid_at(ny, s), grid_at(nx, s));
        level_pass(data, shape, grid, s, false);
    }
}

/// Inverse refactor: undo levels coarse-to-fine.
fn recompose(data: &mut [f32], shape: Shape, levels: usize) {
    let (nz, ny, nx) = shape;
    for l in (0..levels).rev() {
        let s = 1usize << l;
        let grid = (grid_at(nz, s), grid_at(ny, s), grid_at(nx, s));
        level_pass(data, shape, grid, s, true);
    }
}

/// One level: for every grid point with at least one odd coordinate,
/// subtract (`restore = false`) or add (`restore = true`) the multilinear
/// prediction from the even-coordinate (coarser-grid) points.
///
/// Predictions read only all-even points, which this pass never writes, so
/// forward and inverse passes see identical predictor inputs (up to the
/// quantization applied between them).
fn level_pass(
    data: &mut [f32],
    shape: Shape,
    grid: (usize, usize, usize),
    stride: usize,
    restore: bool,
) {
    let (_, ny, nx) = shape;
    let (gz, gy, gx) = grid;
    let idx = |z: usize, y: usize, x: usize| ((z * stride) * ny + y * stride) * nx + x * stride;
    let snapshot = data.to_vec();
    let at = |z: usize, y: usize, x: usize| snapshot[idx(z, y, x)] as f64;
    // Clamped even neighbors along one axis.
    let axis = |i: usize, g: usize| -> (usize, usize) {
        if i % 2 == 1 {
            (i - 1, if i + 1 < g { i + 1 } else { i - 1 })
        } else {
            (i, i)
        }
    };
    for z in 0..gz {
        for y in 0..gy {
            for x in 0..gx {
                if z % 2 == 0 && y % 2 == 0 && x % 2 == 0 {
                    continue; // survives to the coarser level
                }
                let (z0, z1) = axis(z, gz);
                let (y0, y1) = axis(y, gy);
                let (x0, x1) = axis(x, gx);
                let p = (at(z0, y0, x0)
                    + at(z0, y0, x1)
                    + at(z0, y1, x0)
                    + at(z0, y1, x1)
                    + at(z1, y0, x0)
                    + at(z1, y0, x1)
                    + at(z1, y1, x0)
                    + at(z1, y1, x1))
                    / 8.0;
                let target = &mut data[idx(z, y, x)];
                if restore {
                    *target += p as f32;
                } else {
                    *target -= p as f32;
                }
            }
        }
    }
}

impl Mgard {
    /// New instance bound to a device spec (used by the timing model).
    pub fn new(spec: DeviceSpec) -> Self {
        Self { spec, last_time: 0.0 }
    }

    /// Number of levels for a shape (coarsen until the grid is small).
    fn levels_for(shape: Shape) -> usize {
        let (nz, ny, nx) = shape;
        let m = nx.max(ny).max(nz);
        let mut levels = 0;
        let mut g = m;
        while g > 8 && levels < 4 {
            g = g.div_ceil(2);
            levels += 1;
        }
        levels.max(1)
    }

    /// Compress. Returns `None` for 1D fields (mirroring MGARD-GPU's
    /// failure) or when the stream would exceed the original size.
    pub fn compress(&mut self, data: &[f32], shape: Shape, eb_abs: f64) -> Option<MgardStream> {
        if rank_of(shape) == 1 {
            return None; // "cannot work correctly on 1D datasets"
        }
        let levels = Self::levels_for(shape);
        let mut coeffs = data.to_vec();
        refactor(&mut coeffs, shape, levels);

        // Conservative uniform quantization: each reconstruction point
        // accumulates error from at most (levels + 1) coefficient chains
        // with interpolation gain <= 1, so a per-coefficient budget of
        // eb / (levels + 1) over-preserves the bound (the paper: MGARD
        // "over-preserves the data distortion").
        let step = 2.0 * eb_abs / (levels as f64 + 1.0);
        let q: Vec<i32> = coeffs
            .iter()
            .map(|&c| ((c as f64 / step).round()).clamp(i32::MIN as f64, i32::MAX as f64) as i32)
            .collect();
        let bytes: Vec<u8> = q.iter().flat_map(|v| v.to_le_bytes()).collect();
        let compressed = deflate::compress(&bytes);

        // Timing model (documented in DESIGN.md): multi-pass strided
        // refactor on device + CPU DEFLATE at a fixed rate, joined
        // serially (the real pipeline ships coefficients to the host).
        let refactor_bytes = (data.len() * 4 * 2 * levels) as f64;
        let t_refactor = refactor_bytes / (self.spec.mem_bandwidth * REFACTOR_EFFICIENCY);
        let t_deflate = bytes.len() as f64 / DEFLATE_RATE;
        self.last_time = t_refactor + t_deflate;

        if compressed.len() + 64 >= data.len() * 4 {
            return None; // "compressed size larger than the original"
        }
        Some(MgardStream { shape, step, levels, compressed })
    }

    /// Decompress.
    pub fn decompress(&self, stream: &MgardStream) -> Vec<f32> {
        let bytes = deflate::decompress(&stream.compressed).expect("valid stream");
        let mut coeffs: Vec<f32> = bytes
            .chunks_exact(4)
            .map(|c| i32::from_le_bytes(c.try_into().unwrap()) as f32 * stream.step as f32)
            .collect();
        recompose(&mut coeffs, stream.shape, stream.levels);
        coeffs
    }

    /// Modeled compression time of the last call, seconds.
    pub fn kernel_time(&self) -> f64 {
        self.last_time
    }

    /// Expose the refactor-vs-deflate split (for reporting).
    pub fn timing_stats(&self) -> KernelStats {
        KernelStats::default()
    }
}

impl Baseline for Mgard {
    fn name(&self) -> &'static str {
        "MGARD-GPU"
    }

    fn run(&mut self, data: &[f32], shape: Shape, setting: Setting) -> Option<Run> {
        let Setting::Eb(eb) = setting else {
            return None;
        };
        let eb_abs = resolve_eb(data, eb);
        let stream = self.compress(data, shape, eb_abs)?;
        let reconstructed = self.decompress(&stream);
        Some(Run {
            name: self.name(),
            compressed_bytes: stream.size_bytes(),
            compress_time: self.kernel_time(),
            reconstructed,
            codebook_time: 0.0,
        })
    }
}

/// The paper's observation that MGARD-GPU barely speeds up on better
/// hardware: expose the modeled ratio for the tests/benches.
pub fn scaling_ratio(a: &DeviceSpec, b: &DeviceSpec) -> f64 {
    // DEFLATE (device-independent) dominates; only the refactor term
    // scales with bandwidth.
    let t = |spec: &DeviceSpec| {
        1.0 / (spec.mem_bandwidth * REFACTOR_EFFICIENCY) * 8.0 + 4.0 / DEFLATE_RATE
    };
    t(b) / t(a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fzgpu_metrics::{max_abs_error, psnr};
    use fzgpu_sim::device::{A100, A4000};

    fn smooth_2d(ny: usize, nx: usize) -> Vec<f32> {
        (0..ny * nx)
            .map(|i| ((i % nx) as f32 * 0.05).sin() * 3.0 + ((i / nx) as f32 * 0.08).cos())
            .collect()
    }

    #[test]
    fn refactor_recompose_roundtrip_without_quantization() {
        let shape = (1, 33, 47);
        let orig = smooth_2d(33, 47);
        let mut c = orig.clone();
        refactor(&mut c, shape, 3);
        recompose(&mut c, shape, 3);
        for (a, b) in orig.iter().zip(&c) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn roundtrip_over_preserves_bound() {
        let shape = (1, 64, 64);
        let data = smooth_2d(64, 64);
        let eb = 1e-2;
        let mut m = Mgard::new(A100);
        let s = m.compress(&data, shape, eb).unwrap();
        let back = m.decompress(&s);
        let err = max_abs_error(&data, &back);
        assert!(err <= eb, "err {err} > eb {eb}");
        // Over-preservation: actual error well under the bound.
        assert!(err < 0.8 * eb, "expected over-preservation, err {err}");
    }

    #[test]
    fn rejects_1d_fields() {
        let mut m = Mgard::new(A100);
        assert!(m.compress(&vec![1.0f32; 1000], (1, 1, 1000), 1e-3).is_none());
    }

    #[test]
    fn fails_when_stream_exceeds_original() {
        // The QMCPACK-at-1e-4-style failure ("compressed size is larger
        // than the original size"): when headers + an incompressible
        // payload can't beat 4 bytes/value, compress refuses. A tiny field
        // makes the condition deterministic.
        let data = vec![1.0f32, -2.0, 3.0, -4.0];
        let mut m = Mgard::new(A100);
        assert!(m.compress(&data, (1, 2, 2), 1e-6).is_none());
        // Sanity: the same field at a generous bound on a bigger grid works.
        let big: Vec<f32> = (0..32 * 32).map(|i| (i as f32 * 0.01).sin()).collect();
        assert!(m.compress(&big, (1, 32, 32), 1e-2).is_some());
    }

    #[test]
    fn throughput_is_sub_gbps_and_barely_scales() {
        let shape = (1, 64, 64);
        let data = smooth_2d(64, 64);
        let mut m = Mgard::new(A100);
        let _ = m.compress(&data, shape, 1e-2).unwrap();
        let gbps = (data.len() * 4) as f64 / m.kernel_time() / 1e9;
        assert!(gbps < 2.0, "MGARD should be slow, got {gbps} GB/s");
        // Scaling A4000 -> A100 must be far below the bandwidth ratio.
        let s = scaling_ratio(&A100, &A4000);
        assert!(s < 2.0, "scaling {s} should be much less than 3.5x bandwidth ratio");
        assert!(s > 1.0);
    }

    #[test]
    fn quality_reasonable_3d() {
        let shape = (16, 24, 24);
        let data: Vec<f32> = (0..16 * 24 * 24)
            .map(|i| {
                let z = i / (24 * 24);
                let y = i / 24 % 24;
                let x = i % 24;
                (x as f32 * 0.2).sin() + (y as f32 * 0.15).cos() + z as f32 * 0.05
            })
            .collect();
        let mut m = Mgard::new(A100);
        let s = m.compress(&data, shape, 1e-2).unwrap();
        let back = m.decompress(&s);
        assert!(psnr(&data, &back) > 50.0);
    }
}
