//! cuZFP baseline: fixed-rate transform compression of 4^d blocks.
//!
//! Faithful to the ZFP recipe the paper describes ("near orthogonal
//! transform and bit truncation over the split blocks"): per block —
//! block-floating-point alignment to a common exponent, a reversible
//! integer decorrelating lifting transform along each axis, negabinary
//! mapping (so magnitude order survives bitwise truncation), bit-plane
//! serialization MSB-first, and truncation to the fixed per-block bit
//! budget. Only the fixed-*rate* mode exists, mirroring the real cuZFP
//! (the paper's central criticism: no error-bounded mode).
//!
//! **Documented substitution** (DESIGN.md): the lifting transform is a
//! Haar-style average/difference cascade rather than ZFP's exact 4-point
//! lifting. Both are reversible integer "near orthogonal transforms" of
//! the same family; the Haar variant decorrelates slightly less, which we
//! accept because every comparison in the paper is about the *mode*
//! (fixed-rate truncation) and throughput shape, not ZFP's exact basis.

use fzgpu_core::lorenzo::{rank_of, Shape};
use fzgpu_sim::{DeviceSpec, Gpu, GpuBuffer};

use crate::common::{Baseline, Run, Setting};

/// Fixed-point precision of block-floating-point integers (bits).
const PREC: i32 = 25;
/// Negabinary mask.
const NB_MASK: u32 = 0xAAAA_AAAA;

/// One reversible lifting step: `(a, b) -> (avg-ish, diff)`.
#[inline]
fn lift(a: &mut i32, b: &mut i32) {
    *b = b.wrapping_sub(*a);
    *a = a.wrapping_add(*b >> 1);
}

/// Inverse of [`lift`].
#[inline]
fn unlift(a: &mut i32, b: &mut i32) {
    *a = a.wrapping_sub(*b >> 1);
    *b = b.wrapping_add(*a);
}

/// Forward 4-point transform (in place, stride `s`).
fn fwd4(v: &mut [i32], o: usize, s: usize) {
    let (i0, i1, i2, i3) = (o, o + s, o + 2 * s, o + 3 * s);
    let (mut a, mut b, mut c, mut d) = (v[i0], v[i1], v[i2], v[i3]);
    lift(&mut a, &mut b);
    lift(&mut c, &mut d);
    lift(&mut a, &mut c);
    v[i0] = a;
    v[i1] = b;
    v[i2] = c;
    v[i3] = d;
}

/// Inverse 4-point transform.
fn inv4(v: &mut [i32], o: usize, s: usize) {
    let (i0, i1, i2, i3) = (o, o + s, o + 2 * s, o + 3 * s);
    let (mut a, mut b, mut c, mut d) = (v[i0], v[i1], v[i2], v[i3]);
    unlift(&mut a, &mut c);
    unlift(&mut a, &mut b);
    unlift(&mut c, &mut d);
    v[i0] = a;
    v[i1] = b;
    v[i2] = c;
    v[i3] = d;
}

/// Forward transform of a whole 4^rank block.
fn fwd_transform(v: &mut [i32], rank: usize) {
    match rank {
        1 => fwd4(v, 0, 1),
        2 => {
            for y in 0..4 {
                fwd4(v, 4 * y, 1);
            }
            for x in 0..4 {
                fwd4(v, x, 4);
            }
        }
        _ => {
            for z in 0..4 {
                for y in 0..4 {
                    fwd4(v, 16 * z + 4 * y, 1);
                }
            }
            for z in 0..4 {
                for x in 0..4 {
                    fwd4(v, 16 * z + x, 4);
                }
            }
            for y in 0..4 {
                for x in 0..4 {
                    fwd4(v, 4 * y + x, 16);
                }
            }
        }
    }
}

/// Inverse transform (reverse axis order).
fn inv_transform(v: &mut [i32], rank: usize) {
    match rank {
        1 => inv4(v, 0, 1),
        2 => {
            for x in 0..4 {
                inv4(v, x, 4);
            }
            for y in 0..4 {
                inv4(v, 4 * y, 1);
            }
        }
        _ => {
            for y in 0..4 {
                for x in 0..4 {
                    inv4(v, 4 * y + x, 16);
                }
            }
            for z in 0..4 {
                for x in 0..4 {
                    inv4(v, 16 * z + x, 4);
                }
            }
            for z in 0..4 {
                for y in 0..4 {
                    inv4(v, 16 * z + 4 * y, 1);
                }
            }
        }
    }
}

#[inline]
fn to_negabinary(i: i32) -> u32 {
    (i as u32).wrapping_add(NB_MASK) ^ NB_MASK
}

#[inline]
fn from_negabinary(nb: u32) -> i32 {
    (nb ^ NB_MASK).wrapping_sub(NB_MASK) as i32
}

/// Compress one block of `bs` f32 values into `(emax, payload_words)`,
/// keeping `budget_bits` of bit planes.
fn encode_block(vals: &[f32], rank: usize, budget_bits: usize) -> (i32, Vec<u32>) {
    let bs = vals.len();
    let vmax = vals.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
    let nwords = budget_bits.div_ceil(32);
    if vmax == 0.0 {
        return (i32::MIN, vec![0u32; nwords]);
    }
    let emax = vmax.log2().floor() as i32;
    let scale = (PREC - 1 - emax) as f64;
    let mut q: Vec<i32> = vals
        .iter()
        .map(|&v| {
            (v as f64 * scale.exp2()).round().clamp(i32::MIN as f64 / 16.0, i32::MAX as f64 / 16.0)
                as i32
        })
        .collect();
    fwd_transform(&mut q, rank);
    let nb: Vec<u32> = q.iter().map(|&i| to_negabinary(i)).collect();
    // Bit-plane serialization, MSB plane first, truncated to the budget.
    // Each plane is preceded by a 1-bit group-test marker: 0 = plane is
    // all-zero (costs one bit), 1 = the plane's `bs` bits follow. This is
    // the cut-down form of ZFP's group testing and is what makes low
    // rates usable (the MSB planes of negabinary data are empty).
    let mut words = vec![0u32; nwords];
    let mut bitpos = 0usize;
    let put = |words: &mut Vec<u32>, bitpos: &mut usize, bit: bool| {
        if bit {
            words[*bitpos / 32] |= 1 << (*bitpos % 32);
        }
        *bitpos += 1;
    };
    'planes: for p in (0..32).rev() {
        if bitpos >= budget_bits {
            break;
        }
        let live = nb.iter().any(|&c| c >> p & 1 == 1);
        put(&mut words, &mut bitpos, live);
        if !live {
            continue;
        }
        for &c in &nb {
            if bitpos >= budget_bits {
                break 'planes;
            }
            put(&mut words, &mut bitpos, c >> p & 1 == 1);
        }
    }
    let _ = bs;
    (emax, words)
}

/// Decode one block.
fn decode_block(emax: i32, words: &[u32], rank: usize, bs: usize, budget_bits: usize) -> Vec<f32> {
    if emax == i32::MIN {
        return vec![0.0; bs];
    }
    let mut nb = vec![0u32; bs];
    let mut bitpos = 0usize;
    let get = |bitpos: &mut usize| {
        let b = words[*bitpos / 32] >> (*bitpos % 32) & 1 == 1;
        *bitpos += 1;
        b
    };
    'planes: for p in (0..32).rev() {
        if bitpos >= budget_bits {
            break;
        }
        if !get(&mut bitpos) {
            continue; // group-tested empty plane
        }
        for c in nb.iter_mut() {
            if bitpos >= budget_bits {
                break 'planes;
            }
            if get(&mut bitpos) {
                *c |= 1 << p;
            }
        }
    }
    let mut q: Vec<i32> = nb.into_iter().map(from_negabinary).collect();
    inv_transform(&mut q, rank);
    let scale = (emax + 1 - PREC) as f64;
    q.into_iter().map(|i| (i as f64 * scale.exp2()) as f32).collect()
}

/// cuZFP on a simulated device.
pub struct CuZfp {
    gpu: Gpu,
}

/// A cuZFP stream: per-block exponents + fixed-size payloads.
pub struct CuZfpStream {
    /// Field shape.
    pub shape: Shape,
    /// Rate in bits/value the stream was produced at.
    pub rate: f64,
    /// Per-block max exponents (i32::MIN = all-zero block).
    pub emax: Vec<i32>,
    /// Concatenated per-block payload words (fixed stride).
    pub payload: Vec<u32>,
    /// Payload words per block.
    pub words_per_block: usize,
}

impl CuZfpStream {
    /// Compressed bytes: payloads + 2-byte exponent headers.
    pub fn size_bytes(&self) -> usize {
        self.payload.len() * 4 + self.emax.len() * 2 + 64
    }
}

/// Block grid dimensions for a shape.
fn block_grid(shape: Shape) -> (usize, usize, usize) {
    let (nz, ny, nx) = shape;
    (nz.div_ceil(4).max(1), ny.div_ceil(4).max(1), nx.div_ceil(4).max(1))
}

impl CuZfp {
    /// New instance.
    pub fn new(spec: DeviceSpec) -> Self {
        Self { gpu: Gpu::new(spec) }
    }

    /// Compress at `rate` bits/value.
    pub fn compress(&mut self, data: &[f32], shape: Shape, rate: f64) -> CuZfpStream {
        let (nz, ny, nx) = shape;
        assert_eq!(data.len(), nz * ny * nx);
        let rank = rank_of(shape);
        let bs = 4usize.pow(rank as u32);
        let budget_bits = ((rate * bs as f64).ceil() as usize).max(1);
        let wpb = budget_bits.div_ceil(32);
        let (gz, gy, gx) = if rank == 1 { (1, 1, nx.div_ceil(4)) } else { block_grid(shape) };
        let nblocks = gz * gy * gx;

        let d_input = self.gpu.upload(data);
        self.gpu.reset_timeline();
        let d_emax: GpuBuffer<i32> = self.gpu.alloc(nblocks);
        let d_payload: GpuBuffer<u32> = self.gpu.alloc(nblocks * wpb);

        // One lane per block (the cuZFP decomposition). Gather loads are
        // strided (4-apart block origins), transform is ALU-heavy — both
        // charged faithfully by the warp ops.
        let warps_needed = nblocks.div_ceil(32);
        let blocks_launch = warps_needed.div_ceil(8) as u32;
        self.gpu.launch("cuzfp.encode", blocks_launch, 256u32, |blk| {
            let base_blockid = blk.block_linear() * 256;
            blk.warps(|w| {
                // Gather each lane's 4^rank values, one offset at a time
                // so the warp's loads stay lockstep (real cuZFP does the
                // same strided gathers).
                let mut lane_vals: Vec<[f32; 64]> = vec![[0.0; 64]; 32];
                #[allow(clippy::needless_range_loop)] // lockstep kernel idiom
                for k in 0..bs {
                    let v = w.load(&d_input, |l| {
                        let b = base_blockid + l.ltid;
                        if b >= nblocks {
                            return None;
                        }
                        let (bz, by, bx) = (b / (gy * gx), b / gx % gy, b % gx);
                        let (dz, dy, dx) = (k / 16, k / 4 % 4, k % 4);
                        let z = (bz * 4 + dz).min(nz - 1);
                        let y = (by * 4 + dy).min(ny - 1);
                        let x = (bx * 4 + dx).min(nx - 1);
                        Some((z * ny + y) * nx + x)
                    });
                    for i in 0..32 {
                        lane_vals[i][k] = v[i];
                    }
                }
                // Transform + bit-plane packing per lane. Each lane runs a
                // *serial* per-block loop (this is cuZFP's one-thread-per-
                // block decomposition): ~10 ops per value for lifting +
                // negabinary, then a bit-serial emission loop over the
                // plane budget. The 4x factor on the emission models its
                // dependent-chain serialization (bit position feeds the
                // next store), which a pure issue-rate roofline would
                // otherwise hide.
                w.charge_alu(bs as u64 * 10 + budget_bits as u64 * 4);
                let mut lane_words: Vec<Vec<u32>> = Vec::with_capacity(32);
                let mut lane_emax = [0i32; 32];
                for i in 0..32 {
                    let b = base_blockid + w.base_ltid + i;
                    if b < nblocks && i < w.active_lanes {
                        let (e, words) = encode_block(&lane_vals[i][..bs], rank, budget_bits);
                        lane_emax[i] = e;
                        lane_words.push(words);
                    } else {
                        lane_words.push(vec![0u32; wpb]);
                    }
                }
                w.store(&d_emax, |l| {
                    let b = base_blockid + l.ltid;
                    (b < nblocks).then(|| (b, lane_emax[l.id]))
                });
                #[allow(clippy::needless_range_loop)] // lockstep kernel idiom
                for k in 0..wpb {
                    w.store(&d_payload, |l| {
                        let b = base_blockid + l.ltid;
                        (b < nblocks).then(|| (b * wpb + k, lane_words[l.id][k]))
                    });
                }
            });
        });

        // Latency floor: cuZFP's one-thread-per-block coding is bound by
        // dependent-chain latency and local-memory traffic, not bandwidth —
        // the paper observes its throughput "maintains almost the same
        // between A4000 and A100". Calibrated rate falls with the bit
        // budget (more planes = longer serial emission). If the roofline
        // under-bills, record the difference as explicit serialization.
        let floor_gbps = (100.0 - 2.5 * rate).clamp(25.0, 100.0) * 1e9;
        let t_floor = (data.len() * 4) as f64 / floor_gbps;
        let t_roofline = self.gpu.kernel_time();
        if t_roofline < t_floor {
            self.gpu.record_kernel(
                "cuzfp.serialization",
                t_floor - t_roofline,
                fzgpu_sim::KernelStats::default(),
            );
        }

        CuZfpStream {
            shape,
            rate,
            emax: d_emax.to_vec(),
            payload: d_payload.to_vec(),
            words_per_block: wpb,
        }
    }

    /// Decompress (host-side reference path).
    pub fn decompress(&self, stream: &CuZfpStream) -> Vec<f32> {
        let (nz, ny, nx) = stream.shape;
        let rank = rank_of(stream.shape);
        let bs = 4usize.pow(rank as u32);
        let budget_bits = ((stream.rate * bs as f64).ceil() as usize).max(1);
        let (_gz, gy, gx) =
            if rank == 1 { (1, 1, nx.div_ceil(4)) } else { block_grid(stream.shape) };
        let mut out = vec![0.0f32; nz * ny * nx];
        for b in 0..stream.emax.len() {
            let words =
                &stream.payload[b * stream.words_per_block..(b + 1) * stream.words_per_block];
            let vals = decode_block(stream.emax[b], words, rank, bs, budget_bits);
            let (bz, by, bx) = (b / (gy * gx), b / gx % gy, b % gx);
            for (k, &v) in vals.iter().enumerate() {
                let (dz, dy, dx) = (k / 16, k / 4 % 4, k % 4);
                let (z, y, x) = (bz * 4 + dz, by * 4 + dy, bx * 4 + dx);
                if z < nz && y < ny && x < nx {
                    out[(z * ny + y) * nx + x] = v;
                }
            }
        }
        out
    }

    /// Modeled kernel time of the last compress, seconds.
    pub fn kernel_time(&self) -> f64 {
        self.gpu.kernel_time()
    }

    /// The underlying device (timeline inspection).
    pub fn gpu(&self) -> &fzgpu_sim::Gpu {
        &self.gpu
    }

    /// Snapshot the last compress's timeline as a profile (per-kernel
    /// attribution, Chrome-trace export).
    pub fn profile(&self) -> fzgpu_sim::Profile {
        fzgpu_sim::Profile::capture(&self.gpu)
    }
}

impl Baseline for CuZfp {
    fn name(&self) -> &'static str {
        "cuZFP"
    }

    fn run(&mut self, data: &[f32], shape: Shape, setting: Setting) -> Option<Run> {
        let Setting::Rate(rate) = setting else {
            return None; // no error-bounded mode — the paper's point
        };
        let stream = self.compress(data, shape, rate);
        let reconstructed = self.decompress(&stream);
        Some(Run {
            name: self.name(),
            compressed_bytes: stream.size_bytes(),
            compress_time: self.kernel_time(),
            reconstructed,
            codebook_time: 0.0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fzgpu_metrics::psnr;
    use fzgpu_sim::device::A100;

    #[test]
    fn lift_unlift_roundtrip() {
        for (a0, b0) in [(5, 9), (-7, 3), (i32::MAX / 4, -12345), (0, 0), (-1, -1)] {
            let (mut a, mut b) = (a0, b0);
            lift(&mut a, &mut b);
            unlift(&mut a, &mut b);
            assert_eq!((a, b), (a0, b0));
        }
    }

    #[test]
    fn transform_roundtrip_all_ranks() {
        for rank in 1..=3usize {
            let bs = 4usize.pow(rank as u32);
            let orig: Vec<i32> = (0..bs as i32).map(|i| i * 37 - 100).collect();
            let mut v = orig.clone();
            fwd_transform(&mut v, rank);
            inv_transform(&mut v, rank);
            assert_eq!(v, orig, "rank {rank}");
        }
    }

    #[test]
    fn negabinary_roundtrip_and_magnitude_order() {
        for i in [-100, -1, 0, 1, 99, i32::MAX / 2, i32::MIN / 2] {
            assert_eq!(from_negabinary(to_negabinary(i)), i);
        }
        // Small magnitudes use fewer high bits.
        assert!(to_negabinary(1).leading_zeros() > 20);
        assert!(to_negabinary(-1).leading_zeros() > 20);
    }

    #[test]
    fn full_rate_is_near_lossless() {
        let vals: Vec<f32> = (0..64).map(|i| (i as f32 * 0.3).sin()).collect();
        let (e, words) = encode_block(&vals, 3, 32 * 64);
        let back = decode_block(e, &words, 3, 64, 32 * 64);
        for (a, b) in vals.iter().zip(&back) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn zero_block_stays_zero() {
        let vals = vec![0.0f32; 16];
        let (e, words) = encode_block(&vals, 2, 8);
        assert_eq!(e, i32::MIN);
        assert!(decode_block(e, &words, 2, 16, 8).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn psnr_improves_with_rate() {
        let (nz, ny, nx) = (8, 24, 24);
        let data: Vec<f32> = (0..nz * ny * nx)
            .map(|i| ((i % nx) as f32 * 0.2).sin() + ((i / nx % ny) as f32 * 0.15).cos())
            .collect();
        let mut zfp = CuZfp::new(A100);
        let mut prev = 0.0;
        for rate in [2.0, 4.0, 8.0, 16.0] {
            let s = zfp.compress(&data, (nz, ny, nx), rate);
            let back = zfp.decompress(&s);
            let p = psnr(&data, &back);
            assert!(p > prev, "rate {rate}: psnr {p} <= {prev}");
            prev = p;
        }
        assert!(prev > 80.0, "high-rate psnr {prev}");
    }

    #[test]
    fn compressed_size_tracks_rate() {
        let data: Vec<f32> = (0..4096).map(|i| (i as f32 * 0.01).cos()).collect();
        let mut zfp = CuZfp::new(A100);
        let s4 = zfp.compress(&data, (16, 16, 16), 4.0);
        let s8 = zfp.compress(&data, (16, 16, 16), 8.0);
        assert!(s8.size_bytes() > s4.size_bytes());
        let bits_per_val = s4.size_bytes() as f64 * 8.0 / 4096.0;
        assert!(bits_per_val < 6.0, "rate-4 stream is {bits_per_val} bits/val");
    }

    #[test]
    fn ragged_edges_roundtrip() {
        // Dims not multiples of 4.
        let (nz, ny, nx) = (5, 7, 9);
        let data: Vec<f32> = (0..nz * ny * nx).map(|i| i as f32 * 0.1).collect();
        let mut zfp = CuZfp::new(A100);
        let s = zfp.compress(&data, (nz, ny, nx), 16.0);
        let back = zfp.decompress(&s);
        assert_eq!(back.len(), data.len());
        let p = psnr(&data, &back);
        assert!(p > 60.0, "psnr {p}");
    }

    #[test]
    fn run_trait_rejects_eb_mode() {
        let mut zfp = CuZfp::new(A100);
        let data = vec![1.0f32; 256];
        assert!(zfp
            .run(&data, (1, 16, 16), Setting::Eb(fzgpu_core::ErrorBound::Abs(1e-3)))
            .is_none());
        assert!(zfp.run(&data, (1, 16, 16), Setting::Rate(8.0)).is_some());
    }
}
