//! Statistical agreement metrics beyond PSNR: mean absolute error,
//! Pearson correlation, and the autocorrelation of the compression error —
//! the standard SDRBench quality suite (artifacts such as banding show up
//! as correlated error long before they dent PSNR).

use rayon::prelude::*;

/// Mean absolute error.
pub fn mae(original: &[f32], reconstructed: &[f32]) -> f64 {
    assert_eq!(original.len(), reconstructed.len());
    assert!(!original.is_empty());
    original
        .par_iter()
        .zip(reconstructed.par_iter())
        .map(|(&a, &b)| (a as f64 - b as f64).abs())
        .sum::<f64>()
        / original.len() as f64
}

/// Pearson correlation coefficient between original and reconstruction
/// (SDRBench reports this as "pearson corr"; 1.0 = perfect linear fit).
///
/// Returns `None` when either side has zero variance.
pub fn pearson(original: &[f32], reconstructed: &[f32]) -> Option<f64> {
    assert_eq!(original.len(), reconstructed.len());
    let n = original.len() as f64;
    if n == 0.0 {
        return None;
    }
    let mean = |v: &[f32]| v.par_iter().map(|&x| x as f64).sum::<f64>() / n;
    let (ma, mb) = (mean(original), mean(reconstructed));
    let (mut cov, mut va, mut vb) = (0.0f64, 0.0f64, 0.0f64);
    for (&a, &b) in original.iter().zip(reconstructed) {
        let da = a as f64 - ma;
        let db = b as f64 - mb;
        cov += da * db;
        va += da * da;
        vb += db * db;
    }
    if va == 0.0 || vb == 0.0 {
        return None;
    }
    Some(cov / (va.sqrt() * vb.sqrt()))
}

/// Lag-`k` autocorrelation of the pointwise compression error
/// `e_i = a_i - b_i`. Error-bounded quantizers should leave near-white
/// error (autocorrelation ~0); values near 1 indicate structured
/// artifacts.
pub fn error_autocorrelation(original: &[f32], reconstructed: &[f32], lag: usize) -> f64 {
    assert_eq!(original.len(), reconstructed.len());
    assert!(lag > 0 && lag < original.len());
    let err: Vec<f64> =
        original.iter().zip(reconstructed).map(|(&a, &b)| a as f64 - b as f64).collect();
    let n = err.len() as f64;
    let mean = err.iter().sum::<f64>() / n;
    let var: f64 = err.iter().map(|e| (e - mean) * (e - mean)).sum::<f64>() / n;
    if var == 0.0 {
        return 0.0;
    }
    let cov: f64 = err.windows(lag + 1).map(|w| (w[0] - mean) * (w[lag] - mean)).sum::<f64>()
        / (n - lag as f64);
    cov / var
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mae_known_value() {
        assert_eq!(mae(&[0.0, 0.0], &[1.0, -3.0]), 2.0);
        assert_eq!(mae(&[5.0], &[5.0]), 0.0);
    }

    #[test]
    fn pearson_perfect_and_inverted() {
        let a: Vec<f32> = (0..100).map(|i| i as f32).collect();
        let b: Vec<f32> = a.iter().map(|&v| 3.0 * v + 7.0).collect();
        assert!((pearson(&a, &b).unwrap() - 1.0).abs() < 1e-12);
        let c: Vec<f32> = a.iter().map(|&v| -v).collect();
        assert!((pearson(&a, &c).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_none_on_constant() {
        let a = vec![1.0f32; 10];
        let b: Vec<f32> = (0..10).map(|i| i as f32).collect();
        assert!(pearson(&a, &b).is_none());
    }

    #[test]
    fn quantization_error_is_nearly_white() {
        // Round-to-step error of a smooth signal decorrelates quickly.
        let a: Vec<f32> = (0..4096).map(|i| (i as f32 * 0.37).sin() * 3.0).collect();
        let b: Vec<f32> = a.iter().map(|&v| (v / 0.01).round() * 0.01).collect();
        let ac = error_autocorrelation(&a, &b, 1);
        assert!(ac.abs() < 0.35, "autocorrelation {ac}");
    }

    #[test]
    fn structured_error_is_detected() {
        // A constant offset in one half = strongly correlated error.
        let a = vec![0.0f32; 1024];
        let b: Vec<f32> = (0..1024).map(|i| if i < 512 { 0.1 } else { 0.0 }).collect();
        let ac = error_autocorrelation(&a, &b, 1);
        assert!(ac > 0.9, "autocorrelation {ac}");
    }
}
