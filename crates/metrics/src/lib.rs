//! # fzgpu-metrics — compression evaluation metrics
//!
//! Everything §4.2 of the paper measures: compression ratio / bitrate,
//! distortion (PSNR, NRMSE, SSIM), error-bound verification, data
//! distribution comparison (Fig. 12 histograms), and the overall
//! CPU–GPU data-transfer throughput formula of §4.6.

pub mod correlation;
pub mod distortion;
pub mod distribution;
pub mod ratio;
pub mod ssim;
pub mod throughput;

pub use correlation::{error_autocorrelation, mae, pearson};
pub use distortion::{max_abs_error, mse, nrmse, psnr, verify_error_bound};
pub use distribution::{histogram_f32, tv_distance};
pub use ratio::{bitrate, compression_ratio, RatePoint};
pub use ssim::ssim_2d;
pub use throughput::{gbps, overall_throughput};
