//! Pointwise distortion metrics: MSE, PSNR, NRMSE, max error, bound checks.

use rayon::prelude::*;

/// Mean squared error between original and reconstruction.
///
/// # Panics
/// Panics when the slices differ in length or are empty.
pub fn mse(original: &[f32], reconstructed: &[f32]) -> f64 {
    assert_eq!(original.len(), reconstructed.len());
    assert!(!original.is_empty());
    let sum: f64 = original
        .par_iter()
        .zip(reconstructed.par_iter())
        .map(|(&a, &b)| {
            let d = a as f64 - b as f64;
            d * d
        })
        .sum();
    sum / original.len() as f64
}

/// Largest absolute pointwise error.
pub fn max_abs_error(original: &[f32], reconstructed: &[f32]) -> f64 {
    assert_eq!(original.len(), reconstructed.len());
    original
        .par_iter()
        .zip(reconstructed.par_iter())
        .map(|(&a, &b)| (a as f64 - b as f64).abs())
        .reduce(|| 0.0, f64::max)
}

/// Peak signal-to-noise ratio in dB, with the peak taken as the value range
/// of the original (the convention of SDRBench / the paper).
///
/// Returns `f64::INFINITY` for an exact reconstruction.
pub fn psnr(original: &[f32], reconstructed: &[f32]) -> f64 {
    let e = mse(original, reconstructed);
    if e == 0.0 {
        return f64::INFINITY;
    }
    let lo = original.par_iter().copied().reduce(|| f32::INFINITY, f32::min) as f64;
    let hi = original.par_iter().copied().reduce(|| f32::NEG_INFINITY, f32::max) as f64;
    let range = hi - lo;
    20.0 * range.log10() - 10.0 * e.log10()
}

/// Range-normalized root-mean-square error.
pub fn nrmse(original: &[f32], reconstructed: &[f32]) -> f64 {
    let e = mse(original, reconstructed).sqrt();
    let lo = original.par_iter().copied().reduce(|| f32::INFINITY, f32::min) as f64;
    let hi = original.par_iter().copied().reduce(|| f32::NEG_INFINITY, f32::max) as f64;
    let range = hi - lo;
    if range == 0.0 {
        if e == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        e / range
    }
}

/// Check the error-bounded-lossy-compression contract: every point of the
/// reconstruction within `bound` (plus float slack) of the original.
/// Returns the first violating index if any.
pub fn verify_error_bound(
    original: &[f32],
    reconstructed: &[f32],
    bound: f64,
) -> Result<(), usize> {
    assert_eq!(original.len(), reconstructed.len());
    let slack = bound * 1e-5 + 1e-30;
    match original
        .par_iter()
        .zip(reconstructed.par_iter())
        .position_any(|(&a, &b)| (a as f64 - b as f64).abs() > bound + slack)
    {
        Some(i) => Err(i),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_of_identical_is_zero() {
        let a = vec![1.0f32, 2.0, 3.0];
        assert_eq!(mse(&a, &a), 0.0);
        assert_eq!(psnr(&a, &a), f64::INFINITY);
        assert_eq!(nrmse(&a, &a), 0.0);
    }

    #[test]
    fn mse_known_value() {
        let a = vec![0.0f32, 0.0];
        let b = vec![1.0f32, -1.0];
        assert_eq!(mse(&a, &b), 1.0);
        assert_eq!(max_abs_error(&a, &b), 1.0);
    }

    #[test]
    fn psnr_known_value() {
        // Range 10, uniform error 0.1 => PSNR = 20*log10(10/0.1) = 40 dB.
        let a: Vec<f32> = (0..1000).map(|i| (i % 11) as f32).collect();
        let b: Vec<f32> = a.iter().map(|&v| v + 0.1).collect();
        let p = psnr(&a, &b);
        assert!((p - 40.0).abs() < 0.01, "psnr {p}");
    }

    #[test]
    fn psnr_improves_with_smaller_error() {
        let a: Vec<f32> = (0..512).map(|i| (i as f32).sin()).collect();
        let b1: Vec<f32> = a.iter().map(|&v| v + 0.01).collect();
        let b2: Vec<f32> = a.iter().map(|&v| v + 0.001).collect();
        assert!(psnr(&a, &b2) > psnr(&a, &b1) + 19.0);
    }

    #[test]
    fn bound_verification_catches_violation() {
        let a = vec![0.0f32; 100];
        let mut b = a.clone();
        b[42] = 0.2;
        assert!(verify_error_bound(&a, &b, 0.25).is_ok());
        assert_eq!(verify_error_bound(&a, &b, 0.1), Err(42));
    }

    #[test]
    fn bound_verification_allows_exact_bound() {
        let a = vec![0.0f32; 4];
        let b = vec![0.1f32; 4];
        assert!(verify_error_bound(&a, &b, 0.1).is_ok());
    }
}
