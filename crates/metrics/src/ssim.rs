//! Structural Similarity Index over 2D slices.
//!
//! Windowed SSIM (8x8 windows, stride 4) with the standard stabilizers
//! `C1 = (k1 L)^2`, `C2 = (k2 L)^2`, `L` = value range of the original —
//! the formulation the paper cites (Nilsson & Akenine-Möller 2020) applied
//! to scientific fields. Fig. 12 reports SSIM per compressor on a Hurricane
//! slice; [`ssim_2d`] reproduces that measurement.

const K1: f64 = 0.01;
const K2: f64 = 0.03;
const WIN: usize = 8;
const STRIDE: usize = 4;

/// Mean SSIM between two `ny x nx` planes.
///
/// # Panics
/// Panics when sizes disagree or the plane is smaller than one window.
pub fn ssim_2d(a: &[f32], b: &[f32], ny: usize, nx: usize) -> f64 {
    assert_eq!(a.len(), ny * nx);
    assert_eq!(b.len(), ny * nx);
    assert!(ny >= WIN && nx >= WIN, "plane smaller than {WIN}x{WIN}");

    let lo = a.iter().copied().fold(f32::INFINITY, f32::min) as f64;
    let hi = a.iter().copied().fold(f32::NEG_INFINITY, f32::max) as f64;
    let range = (hi - lo).max(f64::MIN_POSITIVE);
    let c1 = (K1 * range) * (K1 * range);
    let c2 = (K2 * range) * (K2 * range);

    let mut total = 0.0;
    let mut count = 0usize;
    let mut wy = 0;
    while wy + WIN <= ny {
        let mut wx = 0;
        while wx + WIN <= nx {
            let (mut ma, mut mb) = (0.0f64, 0.0f64);
            for y in wy..wy + WIN {
                for x in wx..wx + WIN {
                    ma += a[y * nx + x] as f64;
                    mb += b[y * nx + x] as f64;
                }
            }
            let n = (WIN * WIN) as f64;
            ma /= n;
            mb /= n;
            let (mut va, mut vb, mut cov) = (0.0f64, 0.0f64, 0.0f64);
            for y in wy..wy + WIN {
                for x in wx..wx + WIN {
                    let da = a[y * nx + x] as f64 - ma;
                    let db = b[y * nx + x] as f64 - mb;
                    va += da * da;
                    vb += db * db;
                    cov += da * db;
                }
            }
            va /= n - 1.0;
            vb /= n - 1.0;
            cov /= n - 1.0;
            let s = ((2.0 * ma * mb + c1) * (2.0 * cov + c2))
                / ((ma * ma + mb * mb + c1) * (va + vb + c2));
            total += s;
            count += 1;
            wx += STRIDE;
        }
        wy += STRIDE;
    }
    total / count as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane(ny: usize, nx: usize, f: impl Fn(usize, usize) -> f32) -> Vec<f32> {
        (0..ny * nx).map(|i| f(i / nx, i % nx)).collect()
    }

    #[test]
    fn identical_planes_have_ssim_one() {
        let a = plane(32, 32, |y, x| (x as f32 * 0.3).sin() + y as f32 * 0.05);
        let s = ssim_2d(&a, &a, 32, 32);
        assert!((s - 1.0).abs() < 1e-12, "ssim {s}");
    }

    #[test]
    fn small_noise_degrades_slightly() {
        let a = plane(64, 64, |y, x| ((x + y) as f32 * 0.2).sin());
        let b: Vec<f32> =
            a.iter().enumerate().map(|(i, &v)| v + ((i % 7) as f32 - 3.0) * 0.002).collect();
        let s = ssim_2d(&a, &b, 64, 64);
        assert!(s > 0.9 && s < 1.0, "ssim {s}");
    }

    #[test]
    fn heavy_distortion_scores_lower_than_light() {
        let a = plane(64, 64, |y, x| ((x * 3 + y) as f32 * 0.1).cos());
        let light: Vec<f32> = a.iter().map(|&v| v + 0.01).collect();
        let heavy: Vec<f32> = a
            .iter()
            .enumerate()
            .map(|(i, &v)| if i % 2 == 0 { v + 0.4 } else { v - 0.4 })
            .collect();
        assert!(ssim_2d(&a, &light, 64, 64) > ssim_2d(&a, &heavy, 64, 64));
    }

    #[test]
    fn uncorrelated_planes_score_low() {
        let a = plane(32, 32, |y, x| ((x as f32 * 0.7).sin() + (y as f32 * 0.3).cos()) * 5.0);
        let b =
            plane(32, 32, |y, x| (((31 - x) as f32 * 1.3).cos() - (y as f32 * 0.9).sin()) * 5.0);
        assert!(ssim_2d(&a, &b, 32, 32) < 0.5);
    }

    #[test]
    #[should_panic(expected = "smaller than")]
    fn tiny_plane_rejected() {
        let a = vec![0.0f32; 16];
        let _ = ssim_2d(&a, &a, 4, 4);
    }
}
