//! Throughput accounting, including the paper's §4.6 overall data-transfer
//! formula.

/// Convert `(bytes, seconds)` to GB/s (decimal GB, the paper's unit).
pub fn gbps(bytes: usize, seconds: f64) -> f64 {
    assert!(seconds > 0.0);
    bytes as f64 / seconds / 1e9
}

/// Overall CPU–GPU data-transfer throughput (§4.6):
///
/// `T_overall = ((BW * CR)^-1 + T_compr^-1)^-1`
///
/// where `bw_gbps` is the interconnect bandwidth, `ratio` the compression
/// ratio, and `compr_gbps` the compression throughput, all in GB/s.
pub fn overall_throughput(bw_gbps: f64, ratio: f64, compr_gbps: f64) -> f64 {
    assert!(bw_gbps > 0.0 && ratio > 0.0 && compr_gbps > 0.0);
    1.0 / (1.0 / (bw_gbps * ratio) + 1.0 / compr_gbps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gbps_conversion() {
        assert_eq!(gbps(2_000_000_000, 1.0), 2.0);
        assert_eq!(gbps(1_000_000_000, 0.5), 2.0);
    }

    #[test]
    fn overall_is_harmonic_combination() {
        // BW*CR = 100, compr = 100 => overall = 50.
        let t = overall_throughput(10.0, 10.0, 100.0);
        assert!((t - 50.0).abs() < 1e-12);
    }

    #[test]
    fn overall_bounded_by_both_legs() {
        let t = overall_throughput(11.4, 20.0, 90.0);
        assert!(t < 90.0);
        assert!(t < 11.4 * 20.0);
        assert!(t > 0.0);
    }

    #[test]
    fn higher_ratio_raises_overall_when_transfer_bound() {
        let low = overall_throughput(11.4, 2.0, 200.0);
        let high = overall_throughput(11.4, 30.0, 200.0);
        assert!(high > 2.0 * low);
    }

    #[test]
    fn no_compression_baseline() {
        // CR=1 and infinite-ish compressor speed => overall ~= link BW.
        let t = overall_throughput(11.4, 1.0, 1e12);
        assert!((t - 11.4).abs() < 1e-6);
    }
}
