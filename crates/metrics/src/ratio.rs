//! Compression ratio, bitrate, and rate-distortion points.

/// Compression ratio = original bytes / compressed bytes.
///
/// # Panics
/// Panics when `compressed_bytes == 0`.
pub fn compression_ratio(original_bytes: usize, compressed_bytes: usize) -> f64 {
    assert!(compressed_bytes > 0, "empty compressed stream");
    original_bytes as f64 / compressed_bytes as f64
}

/// Bitrate in bits per (f32) value = 32 / CR, the x-axis of Fig. 7.
pub fn bitrate(ratio: f64) -> f64 {
    32.0 / ratio
}

/// One point of a rate-distortion curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RatePoint {
    /// Bits per value.
    pub bitrate: f64,
    /// PSNR in dB.
    pub psnr: f64,
}

impl RatePoint {
    /// Construct from sizes + distortion.
    pub fn new(original_bytes: usize, compressed_bytes: usize, psnr: f64) -> Self {
        Self { bitrate: bitrate(compression_ratio(original_bytes, compressed_bytes)), psnr }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_and_bitrate() {
        let cr = compression_ratio(4000, 125);
        assert_eq!(cr, 32.0);
        assert_eq!(bitrate(cr), 1.0);
    }

    #[test]
    fn rate_point() {
        let p = RatePoint::new(1000, 250, 80.0);
        assert!((p.bitrate - 8.0).abs() < 1e-12);
        assert_eq!(p.psnr, 80.0);
    }

    #[test]
    #[should_panic(expected = "empty compressed")]
    fn zero_compressed_rejected() {
        let _ = compression_ratio(100, 0);
    }
}
