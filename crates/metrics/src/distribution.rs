//! Value-distribution comparison (the second row of the paper's Fig. 12
//! plots decompressed-vs-original histograms per compressor).

/// Histogram of `data` over `bins` equal-width buckets spanning `[lo, hi]`.
/// Values outside the range clamp to the edge buckets.
pub fn histogram_f32(data: &[f32], lo: f32, hi: f32, bins: usize) -> Vec<u64> {
    assert!(bins > 0);
    assert!(hi > lo, "degenerate histogram range");
    let mut h = vec![0u64; bins];
    let scale = bins as f64 / (hi - lo) as f64;
    for &v in data {
        let b = (((v - lo) as f64 * scale) as isize).clamp(0, bins as isize - 1) as usize;
        h[b] += 1;
    }
    h
}

/// Total-variation distance between two histograms of equal totals
/// (0 = identical distribution, 1 = disjoint). Used to quantify how well a
/// compressor preserves the data distribution in Fig. 12.
pub fn tv_distance(h1: &[u64], h2: &[u64]) -> f64 {
    assert_eq!(h1.len(), h2.len());
    let n1: u64 = h1.iter().sum();
    let n2: u64 = h2.iter().sum();
    assert!(n1 > 0 && n2 > 0);
    0.5 * h1
        .iter()
        .zip(h2)
        .map(|(&a, &b)| (a as f64 / n1 as f64 - b as f64 / n2 as f64).abs())
        .sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_places_values() {
        let data = vec![0.0f32, 0.49, 0.5, 1.0];
        let h = histogram_f32(&data, 0.0, 1.0, 2);
        assert_eq!(h, vec![2, 2]);
    }

    #[test]
    fn out_of_range_clamps() {
        let data = vec![-5.0f32, 5.0];
        let h = histogram_f32(&data, 0.0, 1.0, 4);
        assert_eq!(h, vec![1, 0, 0, 1]);
    }

    #[test]
    fn tv_distance_of_identical_is_zero() {
        let h = vec![5u64, 3, 2];
        assert_eq!(tv_distance(&h, &h), 0.0);
    }

    #[test]
    fn tv_distance_of_disjoint_is_one() {
        assert_eq!(tv_distance(&[10, 0], &[0, 10]), 1.0);
    }

    #[test]
    fn tv_distance_handles_different_totals() {
        // Same distribution, different sample count.
        let d = tv_distance(&[10, 10], &[100, 100]);
        assert!(d.abs() < 1e-12);
    }
}
