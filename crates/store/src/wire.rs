//! Little-endian byte (de)serialization helpers for codec stream formats.
//!
//! Every codec in this crate that serializes a structured stream (the
//! baseline wrappers) writes through these helpers so the wire layout is
//! uniform: scalars little-endian, sequences length-prefixed with a `u64`
//! element count. Parsing is bounds-checked and returns a `&'static str`
//! describing the first malformed field — mapped to
//! [`crate::codec::CodecError::Malformed`] at the codec boundary.

/// Bounds-checked parse result.
pub type WireResult<T> = Result<T, &'static str>;

/// Append a `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append an `f64`.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a length-prefixed byte slice.
pub fn put_bytes(out: &mut Vec<u8>, v: &[u8]) {
    put_u64(out, v.len() as u64);
    out.extend_from_slice(v);
}

/// Append a length-prefixed `u32` slice.
pub fn put_u32s(out: &mut Vec<u8>, v: &[u32]) {
    put_u64(out, v.len() as u64);
    for &x in v {
        put_u32(out, x);
    }
}

/// Append a length-prefixed `f32` slice.
pub fn put_f32s(out: &mut Vec<u8>, v: &[f32]) {
    put_u64(out, v.len() as u64);
    for &x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

/// Sequential bounds-checked reader over a byte slice.
pub struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Reader positioned at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Take `n` raw bytes.
    pub fn take(&mut self, n: usize) -> WireResult<&'a [u8]> {
        let end = self.pos.checked_add(n).ok_or("length overflow")?;
        if end > self.bytes.len() {
            return Err("truncated stream");
        }
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Read a `u32`.
    pub fn u32(&mut self) -> WireResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a `u64`.
    pub fn u64(&mut self) -> WireResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a `u64` that must fit a `usize` and stay under `cap` (an
    /// allocation guard for length prefixes).
    pub fn len(&mut self, cap: usize) -> WireResult<usize> {
        let v = self.u64()?;
        if v > cap as u64 {
            return Err("length prefix out of range");
        }
        Ok(v as usize)
    }

    /// Read an `f64`.
    pub fn f64(&mut self) -> WireResult<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read an `f32`.
    pub fn f32(&mut self) -> WireResult<f32> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a length-prefixed byte vector.
    pub fn bytes(&mut self) -> WireResult<Vec<u8>> {
        let n = self.len(self.remaining())?;
        Ok(self.take(n)?.to_vec())
    }

    /// Read a length-prefixed `u32` vector.
    pub fn u32s(&mut self) -> WireResult<Vec<u32>> {
        let n = self.len(self.remaining() / 4)?;
        (0..n).map(|_| self.u32()).collect()
    }

    /// Read a length-prefixed `f32` vector.
    pub fn f32s(&mut self) -> WireResult<Vec<f32>> {
        let n = self.len(self.remaining() / 4)?;
        (0..n).map(|_| self.f32()).collect()
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Error unless every byte was consumed.
    pub fn done(&self) -> WireResult<()> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err("trailing bytes after stream")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars_and_sequences() {
        let mut out = Vec::new();
        put_u32(&mut out, 7);
        put_u64(&mut out, u64::MAX - 1);
        put_f64(&mut out, -0.5);
        put_bytes(&mut out, b"abc");
        put_u32s(&mut out, &[1, 2, 3]);
        put_f32s(&mut out, &[1.5, -2.5]);
        let mut c = Cursor::new(&out);
        assert_eq!(c.u32().unwrap(), 7);
        assert_eq!(c.u64().unwrap(), u64::MAX - 1);
        assert_eq!(c.f64().unwrap(), -0.5);
        assert_eq!(c.bytes().unwrap(), b"abc");
        assert_eq!(c.u32s().unwrap(), vec![1, 2, 3]);
        assert_eq!(c.f32s().unwrap(), vec![1.5, -2.5]);
        c.done().unwrap();
    }

    #[test]
    fn truncation_and_bogus_lengths_are_errors() {
        let mut c = Cursor::new(&[1, 2]);
        assert!(c.u32().is_err());
        // A length prefix claiming more data than exists must not allocate.
        let mut out = Vec::new();
        put_u64(&mut out, u64::MAX);
        assert!(Cursor::new(&out).bytes().is_err());
        let mut c = Cursor::new(&[0u8; 9]);
        c.take(8).unwrap();
        assert!(c.done().is_err());
    }
}
