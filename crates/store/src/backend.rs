//! Pluggable storage backends for store containers.
//!
//! A backend is a byte blob supporting whole-object writes and range
//! reads. Three implementations:
//!
//! - [`MemBackend`] — an in-memory `Vec<u8>` (tests, caches).
//! - [`FsBackend`] — a file on disk, range reads via seek.
//! - [`ObjectStoreBackend`] — in-memory bytes behind a modeled object
//!   store: every range GET is rounded to part granularity and charged a
//!   deterministic `latency + bytes/throughput` cost, accumulated in
//!   [`BackendStats::modeled_seconds`] (the same modeled-time currency as
//!   the device timeline — never wall time).
//!
//! Every read/write updates the Det-class metrics
//! `fzgpu_store_bytes_read_total` / `fzgpu_store_backend_reads_total`
//! (labeled by backend kind), which is what lets tests and the store
//! bench *prove* partial decode is partial.

use std::io::{Read, Seek, SeekFrom};

use fzgpu_trace::metrics::{counter_add, Class};

use crate::store::StoreError;

/// Deterministic I/O accounting for one backend instance.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BackendStats {
    /// Range-read requests issued.
    pub reads: u64,
    /// Bytes fetched (for the object store: after part rounding).
    pub bytes_read: u64,
    /// Whole-object writes.
    pub writes: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Modeled seconds charged for I/O (0 for mem/fs backends).
    pub modeled_seconds: f64,
}

/// A byte blob with range reads.
pub trait StorageBackend {
    /// Backend kind label: `"mem"`, `"fs"`, or `"objsim"`.
    fn kind(&self) -> &'static str;

    /// Current object length in bytes.
    fn len(&self) -> u64;

    /// True when no object has been written.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Replace the object with `bytes`.
    fn write_all(&mut self, bytes: &[u8]) -> Result<(), StoreError>;

    /// Read `len` bytes starting at `offset`. Reading past the end is an
    /// error, not a short read.
    fn read_range(&mut self, offset: u64, len: u64) -> Result<Vec<u8>, StoreError>;

    /// Accounting since construction.
    fn stats(&self) -> BackendStats;
}

fn note_read(kind: &'static str, bytes: u64) {
    counter_add(Class::Det, "fzgpu_store_backend_reads_total", &[("backend", kind)], 1);
    counter_add(Class::Det, "fzgpu_store_bytes_read_total", &[("backend", kind)], bytes);
}

fn note_write(kind: &'static str, bytes: u64) {
    counter_add(Class::Det, "fzgpu_store_backend_writes_total", &[("backend", kind)], 1);
    counter_add(Class::Det, "fzgpu_store_bytes_written_total", &[("backend", kind)], bytes);
}

fn check_range(total: u64, offset: u64, len: u64) -> Result<(), StoreError> {
    let end = offset
        .checked_add(len)
        .ok_or_else(|| StoreError::BadRequest("read range overflows".into()))?;
    if end > total {
        return Err(StoreError::BadRequest(format!(
            "read range {offset}..{end} exceeds object length {total}"
        )));
    }
    Ok(())
}

/// In-memory backend.
#[derive(Debug, Default)]
pub struct MemBackend {
    bytes: Vec<u8>,
    stats: BackendStats,
}

impl MemBackend {
    /// Empty backend.
    pub fn new() -> Self {
        Self::default()
    }

    /// Backend pre-loaded with an existing object.
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        Self { bytes, stats: BackendStats::default() }
    }
}

impl StorageBackend for MemBackend {
    fn kind(&self) -> &'static str {
        "mem"
    }

    fn len(&self) -> u64 {
        self.bytes.len() as u64
    }

    fn write_all(&mut self, bytes: &[u8]) -> Result<(), StoreError> {
        self.bytes = bytes.to_vec();
        self.stats.writes += 1;
        self.stats.bytes_written += bytes.len() as u64;
        note_write("mem", bytes.len() as u64);
        Ok(())
    }

    fn read_range(&mut self, offset: u64, len: u64) -> Result<Vec<u8>, StoreError> {
        check_range(self.len(), offset, len)?;
        self.stats.reads += 1;
        self.stats.bytes_read += len;
        note_read("mem", len);
        Ok(self.bytes[offset as usize..(offset + len) as usize].to_vec())
    }

    fn stats(&self) -> BackendStats {
        self.stats
    }
}

/// Filesystem backend: one container file, range reads via seek.
#[derive(Debug)]
pub struct FsBackend {
    path: std::path::PathBuf,
    stats: BackendStats,
}

impl FsBackend {
    /// Backend over `path` (the file need not exist until the first
    /// write or read).
    pub fn new(path: impl Into<std::path::PathBuf>) -> Self {
        Self { path: path.into(), stats: BackendStats::default() }
    }

    /// The backing path.
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }
}

impl StorageBackend for FsBackend {
    fn kind(&self) -> &'static str {
        "fs"
    }

    fn len(&self) -> u64 {
        std::fs::metadata(&self.path).map(|m| m.len()).unwrap_or(0)
    }

    fn write_all(&mut self, bytes: &[u8]) -> Result<(), StoreError> {
        std::fs::write(&self.path, bytes)
            .map_err(|e| StoreError::Io(format!("{}: {e}", self.path.display())))?;
        self.stats.writes += 1;
        self.stats.bytes_written += bytes.len() as u64;
        note_write("fs", bytes.len() as u64);
        Ok(())
    }

    fn read_range(&mut self, offset: u64, len: u64) -> Result<Vec<u8>, StoreError> {
        let mut f = std::fs::File::open(&self.path)
            .map_err(|e| StoreError::Io(format!("{}: {e}", self.path.display())))?;
        let total = f
            .metadata()
            .map_err(|e| StoreError::Io(format!("{}: {e}", self.path.display())))?
            .len();
        check_range(total, offset, len)?;
        f.seek(SeekFrom::Start(offset))
            .map_err(|e| StoreError::Io(format!("{}: {e}", self.path.display())))?;
        let mut out = vec![0u8; len as usize];
        f.read_exact(&mut out)
            .map_err(|e| StoreError::Io(format!("{}: {e}", self.path.display())))?;
        self.stats.reads += 1;
        self.stats.bytes_read += len;
        note_read("fs", len);
        Ok(out)
    }

    fn stats(&self) -> BackendStats {
        self.stats
    }
}

/// Latency/throughput model for the simulated object store.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObjectStoreModel {
    /// Fixed per-request latency, seconds (time-to-first-byte).
    pub request_latency_s: f64,
    /// Sustained GET throughput, bytes per second.
    pub throughput_bps: f64,
    /// Fetch granularity: a range GET is expanded to whole parts of this
    /// many bytes (clipped to the object), like S3 part-aligned reads.
    pub part_bytes: u64,
}

impl Default for ObjectStoreModel {
    fn default() -> Self {
        // A mid-range object store: 0.5 ms to first byte, ~1.2 GB/s
        // sustained, 64 KiB parts.
        Self { request_latency_s: 500e-6, throughput_bps: 1.2e9, part_bytes: 64 * 1024 }
    }
}

/// Simulated object store: in-memory bytes + the [`ObjectStoreModel`]
/// cost model. Reads are part-aligned, so `bytes_read` reflects what a
/// real object store would actually transfer, not what was asked for.
#[derive(Debug)]
pub struct ObjectStoreBackend {
    bytes: Vec<u8>,
    model: ObjectStoreModel,
    stats: BackendStats,
}

impl ObjectStoreBackend {
    /// Empty simulated object store with the default model.
    pub fn new() -> Self {
        Self::with_model(ObjectStoreModel::default())
    }

    /// Empty simulated object store with a custom model.
    pub fn with_model(model: ObjectStoreModel) -> Self {
        assert!(model.part_bytes > 0, "part size must be positive");
        assert!(model.throughput_bps > 0.0, "throughput must be positive");
        Self { bytes: Vec::new(), model, stats: BackendStats::default() }
    }

    /// Pre-loaded simulated object store.
    pub fn from_bytes(bytes: Vec<u8>, model: ObjectStoreModel) -> Self {
        let mut b = Self::with_model(model);
        b.bytes = bytes;
        b
    }

    /// The cost model in effect.
    pub fn model(&self) -> ObjectStoreModel {
        self.model
    }
}

impl Default for ObjectStoreBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl StorageBackend for ObjectStoreBackend {
    fn kind(&self) -> &'static str {
        "objsim"
    }

    fn len(&self) -> u64 {
        self.bytes.len() as u64
    }

    fn write_all(&mut self, bytes: &[u8]) -> Result<(), StoreError> {
        self.bytes = bytes.to_vec();
        self.stats.writes += 1;
        self.stats.bytes_written += bytes.len() as u64;
        self.stats.modeled_seconds +=
            self.model.request_latency_s + bytes.len() as f64 / self.model.throughput_bps;
        note_write("objsim", bytes.len() as u64);
        Ok(())
    }

    fn read_range(&mut self, offset: u64, len: u64) -> Result<Vec<u8>, StoreError> {
        let total = self.len();
        check_range(total, offset, len)?;
        // Expand to part boundaries: these are the bytes the store
        // actually serves (and what the cost model charges for).
        let part = self.model.part_bytes;
        let fetch_lo = (offset / part) * part;
        let fetch_hi = ((offset + len).div_ceil(part) * part).min(total);
        let fetched = fetch_hi - fetch_lo;
        self.stats.reads += 1;
        self.stats.bytes_read += fetched;
        self.stats.modeled_seconds +=
            self.model.request_latency_s + fetched as f64 / self.model.throughput_bps;
        note_read("objsim", fetched);
        Ok(self.bytes[offset as usize..(offset + len) as usize].to_vec())
    }

    fn stats(&self) -> BackendStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_backend_reads_exactly() {
        let mut b = MemBackend::new();
        b.write_all(&[1, 2, 3, 4, 5]).unwrap();
        assert_eq!(b.read_range(1, 3).unwrap(), vec![2, 3, 4]);
        assert!(b.read_range(4, 2).is_err());
        let s = b.stats();
        assert_eq!((s.reads, s.bytes_read, s.writes, s.bytes_written), (1, 3, 1, 5));
        assert_eq!(s.modeled_seconds, 0.0);
    }

    #[test]
    fn objsim_rounds_to_parts_and_charges_time() {
        let model =
            ObjectStoreModel { request_latency_s: 1e-3, throughput_bps: 1e6, part_bytes: 16 };
        let mut b = ObjectStoreBackend::with_model(model);
        b.write_all(&[7u8; 100]).unwrap();
        let t0 = b.stats().modeled_seconds;
        // A 4-byte read at offset 30 spans parts [16,32) and [32,48).
        assert_eq!(b.read_range(30, 4).unwrap(), vec![7u8; 4]);
        let s = b.stats();
        assert_eq!(s.bytes_read, 32);
        let expect = 1e-3 + 32.0 / 1e6;
        assert!((s.modeled_seconds - t0 - expect).abs() < 1e-12);
        // The final part is clipped to the object length.
        b.read_range(96, 4).unwrap();
        assert_eq!(b.stats().bytes_read, 32 + 4);
    }

    #[test]
    fn fs_backend_roundtrips() {
        let path = std::env::temp_dir().join("fzgpu_store_backend_test.bin");
        let mut b = FsBackend::new(&path);
        b.write_all(&[9, 8, 7, 6]).unwrap();
        assert_eq!(b.len(), 4);
        assert_eq!(b.read_range(2, 2).unwrap(), vec![7, 6]);
        assert!(b.read_range(3, 2).is_err());
        std::fs::remove_file(&path).ok();
    }
}
