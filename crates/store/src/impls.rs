//! Built-in [`Codec`] implementations: the FZ-GPU pipeline, the five
//! baseline compressors (plus cuSZ+RLE), and the lossless codecs from
//! `fzgpu-codecs`.
//!
//! The baseline compressors keep their structured in-memory streams; this
//! module gives each a byte serialization (via [`crate::wire`]) so they
//! can live inside archive chunks. Huffman codebooks are stored as their
//! canonical length tables only — codes are reproducible via
//! [`Codebook::from_lengths`].

use fzgpu_baselines::cusz::CuSzStream;
use fzgpu_baselines::cusz_rle::CuSzRleStream;
use fzgpu_baselines::cuszx::CuSzxStream;
use fzgpu_baselines::cuzfp::CuZfpStream;
use fzgpu_baselines::mgard::MgardStream;
use fzgpu_baselines::sz_omp::SzOmpStream;
use fzgpu_baselines::{CuSz, CuSzRle, CuSzx, CuZfp, Mgard, SzOmp};
use fzgpu_codecs::huffman::{self, ChunkedStream};
use fzgpu_codecs::lz77::{self, Token};
use fzgpu_codecs::{deflate, rle, Codebook};
use fzgpu_core::{ErrorBound, FzGpu, Shape};
use fzgpu_sim::DeviceSpec;

use crate::codec::{Codec, CodecConfig, CodecError};
use crate::wire::{self, Cursor};

/// Values in a shape.
fn volume(shape: Shape) -> usize {
    shape.0 * shape.1 * shape.2
}

fn f32s_to_le(data: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() * 4);
    for v in data {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn le_to_f32s(bytes: &[u8]) -> Result<Vec<f32>, CodecError> {
    if !bytes.len().is_multiple_of(4) {
        return Err(CodecError::Malformed("payload length not a multiple of 4"));
    }
    Ok(bytes.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().unwrap())).collect())
}

fn check_len(got: usize, shape: Shape) -> Result<(), CodecError> {
    if got != volume(shape) {
        return Err(CodecError::Malformed("decoded value count does not match chunk shape"));
    }
    Ok(())
}

fn check_input(data: &[f32], shape: Shape) -> Result<(), CodecError> {
    if data.len() != volume(shape) {
        return Err(CodecError::Unsupported("input length does not match chunk shape"));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Shared wire fragments for the cuSZ-family streams.

fn put_shape(out: &mut Vec<u8>, shape: Shape) {
    wire::put_u64(out, shape.0 as u64);
    wire::put_u64(out, shape.1 as u64);
    wire::put_u64(out, shape.2 as u64);
}

fn get_shape(c: &mut Cursor<'_>) -> Result<Shape, &'static str> {
    Ok((c.u64()? as usize, c.u64()? as usize, c.u64()? as usize))
}

fn put_book(out: &mut Vec<u8>, book: &Codebook) {
    wire::put_bytes(out, &book.lengths);
}

fn get_book(c: &mut Cursor<'_>) -> Result<Codebook, &'static str> {
    Ok(Codebook::from_lengths(c.bytes()?))
}

fn put_chunked(out: &mut Vec<u8>, s: &ChunkedStream) {
    wire::put_bytes(out, &s.payload);
    wire::put_u32s(out, &s.offsets);
    wire::put_u64(out, s.chunk_symbols as u64);
    wire::put_u64(out, s.total_symbols as u64);
}

fn get_chunked(c: &mut Cursor<'_>) -> Result<ChunkedStream, &'static str> {
    let payload = c.bytes()?;
    let offsets = c.u32s()?;
    let chunk_symbols = c.u64()? as usize;
    let total_symbols = c.u64()? as usize;
    if offsets.is_empty() || chunk_symbols == 0 {
        return Err("empty chunk offset table");
    }
    if offsets.last().copied().unwrap_or(0) as usize != payload.len() {
        return Err("chunk offsets do not cover payload");
    }
    Ok(ChunkedStream { payload, offsets, chunk_symbols, total_symbols })
}

fn put_outliers(out: &mut Vec<u8>, outliers: &[(u32, i32)]) {
    wire::put_u64(out, outliers.len() as u64);
    for &(i, d) in outliers {
        wire::put_u32(out, i);
        wire::put_u32(out, d as u32);
    }
}

fn get_outliers(c: &mut Cursor<'_>) -> Result<Vec<(u32, i32)>, &'static str> {
    let n = c.len(c.remaining() / 8)?;
    (0..n).map(|_| Ok((c.u32()?, c.u32()? as i32))).collect()
}

fn malformed(what: &'static str) -> CodecError {
    CodecError::Malformed(what)
}

// ---------------------------------------------------------------------------
// FZ-GPU

/// The fzgpu pipeline behind the [`Codec`] interface. Streams are the
/// self-describing v2 wire format (header + CRCs), so decode ignores no
/// corruption the pipeline would catch.
pub struct FzCodec {
    fz: FzGpu,
    eb_abs: f64,
}

impl FzCodec {
    /// New instance on `spec` (path/engine resolved from the environment
    /// like every other `FzGpu`).
    pub fn new(spec: DeviceSpec, eb_abs: f64) -> Self {
        Self { fz: FzGpu::new(spec), eb_abs }
    }
}

impl Codec for FzCodec {
    fn config(&self) -> CodecConfig {
        CodecConfig::Fz { eb_abs: self.eb_abs }
    }

    fn encode(&mut self, data: &[f32], shape: Shape) -> Result<Vec<u8>, CodecError> {
        check_input(data, shape)?;
        Ok(self.fz.compress(data, shape, ErrorBound::Abs(self.eb_abs)).bytes)
    }

    fn decode(&mut self, bytes: &[u8], shape: Shape) -> Result<Vec<f32>, CodecError> {
        let out = self.fz.decompress_bytes(bytes)?;
        check_len(out.len(), shape)?;
        Ok(out)
    }

    fn modeled_seconds(&self) -> f64 {
        self.fz.kernel_time()
    }
}

// ---------------------------------------------------------------------------
// cuSZ / SZ-OMP (same stream layout: book + chunked payload + outliers)

/// cuSZ behind the [`Codec`] interface.
pub struct CuSzCodec {
    inner: CuSz,
    eb_abs: f64,
}

impl CuSzCodec {
    fn serialize(s: &CuSzStream) -> Vec<u8> {
        let mut out = Vec::new();
        put_shape(&mut out, s.shape);
        wire::put_f64(&mut out, s.eb);
        put_book(&mut out, &s.book);
        put_chunked(&mut out, &s.encoded);
        put_outliers(&mut out, &s.outliers);
        out
    }

    fn parse(bytes: &[u8]) -> Result<CuSzStream, &'static str> {
        let mut c = Cursor::new(bytes);
        let s = CuSzStream {
            shape: get_shape(&mut c)?,
            eb: c.f64()?,
            book: get_book(&mut c)?,
            encoded: get_chunked(&mut c)?,
            outliers: get_outliers(&mut c)?,
        };
        c.done()?;
        Ok(s)
    }
}

impl Codec for CuSzCodec {
    fn config(&self) -> CodecConfig {
        CodecConfig::CuSz { eb_abs: self.eb_abs }
    }

    fn encode(&mut self, data: &[f32], shape: Shape) -> Result<Vec<u8>, CodecError> {
        check_input(data, shape)?;
        Ok(Self::serialize(&self.inner.compress(data, shape, self.eb_abs)))
    }

    fn decode(&mut self, bytes: &[u8], shape: Shape) -> Result<Vec<f32>, CodecError> {
        let stream = Self::parse(bytes).map_err(malformed)?;
        if stream.shape != shape {
            return Err(malformed("stored shape does not match chunk shape"));
        }
        let out = self.inner.decompress(&stream);
        check_len(out.len(), shape)?;
        Ok(out)
    }

    fn modeled_seconds(&self) -> f64 {
        self.inner.kernel_time()
    }
}

/// SZ-OMP behind the [`Codec`] interface (3D chunks only).
pub struct SzOmpCodec {
    inner: SzOmp,
    eb_abs: f64,
}

impl SzOmpCodec {
    fn serialize(s: &SzOmpStream) -> Vec<u8> {
        let mut out = Vec::new();
        put_shape(&mut out, s.shape);
        wire::put_f64(&mut out, s.eb);
        put_book(&mut out, &s.book);
        put_chunked(&mut out, &s.encoded);
        put_outliers(&mut out, &s.outliers);
        out
    }

    fn parse(bytes: &[u8]) -> Result<SzOmpStream, &'static str> {
        let mut c = Cursor::new(bytes);
        let s = SzOmpStream {
            shape: get_shape(&mut c)?,
            eb: c.f64()?,
            book: get_book(&mut c)?,
            encoded: get_chunked(&mut c)?,
            outliers: get_outliers(&mut c)?,
        };
        c.done()?;
        Ok(s)
    }
}

impl Codec for SzOmpCodec {
    fn config(&self) -> CodecConfig {
        CodecConfig::SzOmp { eb_abs: self.eb_abs }
    }

    fn encode(&mut self, data: &[f32], shape: Shape) -> Result<Vec<u8>, CodecError> {
        check_input(data, shape)?;
        let stream = self
            .inner
            .compress(data, shape, self.eb_abs)
            .ok_or(CodecError::Unsupported("SZ-OMP requires 3D chunks"))?;
        Ok(Self::serialize(&stream))
    }

    fn decode(&mut self, bytes: &[u8], shape: Shape) -> Result<Vec<f32>, CodecError> {
        let stream = Self::parse(bytes).map_err(malformed)?;
        if stream.shape != shape {
            return Err(malformed("stored shape does not match chunk shape"));
        }
        let out = self.inner.decompress(&stream);
        check_len(out.len(), shape)?;
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// cuSZ+RLE

/// cuSZ+RLE behind the [`Codec`] interface.
pub struct CuSzRleCodec {
    inner: CuSzRle,
    eb_abs: f64,
}

impl CuSzRleCodec {
    fn serialize(s: &CuSzRleStream) -> Vec<u8> {
        let mut out = Vec::new();
        put_shape(&mut out, s.shape);
        wire::put_f64(&mut out, s.eb);
        wire::put_u64(&mut out, s.runs.len() as u64);
        for &(sym, count) in &s.runs {
            out.extend_from_slice(&sym.to_le_bytes());
            wire::put_u32(&mut out, count);
        }
        put_outliers(&mut out, &s.outliers);
        wire::put_u64(&mut out, s.n_values as u64);
        out
    }

    fn parse(bytes: &[u8]) -> Result<CuSzRleStream, &'static str> {
        let mut c = Cursor::new(bytes);
        let shape = get_shape(&mut c)?;
        let eb = c.f64()?;
        let n_runs = c.len(c.remaining() / 6)?;
        let runs = (0..n_runs)
            .map(|_| {
                let sym = u16::from_le_bytes(c.take(2)?.try_into().unwrap());
                Ok((sym, c.u32()?))
            })
            .collect::<Result<Vec<rle::Run>, &'static str>>()?;
        let outliers = get_outliers(&mut c)?;
        let n_values = c.u64()? as usize;
        c.done()?;
        Ok(CuSzRleStream { shape, eb, runs, outliers, n_values })
    }
}

impl Codec for CuSzRleCodec {
    fn config(&self) -> CodecConfig {
        CodecConfig::CuSzRle { eb_abs: self.eb_abs }
    }

    fn encode(&mut self, data: &[f32], shape: Shape) -> Result<Vec<u8>, CodecError> {
        check_input(data, shape)?;
        Ok(Self::serialize(&self.inner.compress(data, shape, self.eb_abs)))
    }

    fn decode(&mut self, bytes: &[u8], shape: Shape) -> Result<Vec<f32>, CodecError> {
        let stream = Self::parse(bytes).map_err(malformed)?;
        if stream.shape != shape {
            return Err(malformed("stored shape does not match chunk shape"));
        }
        let out = self.inner.decompress(&stream);
        check_len(out.len(), shape)?;
        Ok(out)
    }

    fn modeled_seconds(&self) -> f64 {
        self.inner.kernel_time()
    }
}

// ---------------------------------------------------------------------------
// cuSZx

/// cuSZx behind the [`Codec`] interface.
pub struct CuSzxCodec {
    inner: CuSzx,
    eb_abs: f64,
}

impl CuSzxCodec {
    fn serialize(s: &CuSzxStream) -> Vec<u8> {
        let mut out = Vec::new();
        put_shape(&mut out, s.shape);
        wire::put_f64(&mut out, s.eb);
        wire::put_f32s(&mut out, &s.bases);
        wire::put_bytes(&mut out, &s.bits);
        wire::put_u32s(&mut out, &s.payload);
        wire::put_u64(&mut out, s.n_values as u64);
        out
    }

    fn parse(bytes: &[u8]) -> Result<CuSzxStream, &'static str> {
        let mut c = Cursor::new(bytes);
        let s = CuSzxStream {
            shape: get_shape(&mut c)?,
            eb: c.f64()?,
            bases: c.f32s()?,
            bits: c.bytes()?,
            payload: c.u32s()?,
            n_values: c.u64()? as usize,
        };
        c.done()?;
        if s.bases.len() != s.bits.len() {
            return Err("base/width tables disagree");
        }
        Ok(s)
    }
}

impl Codec for CuSzxCodec {
    fn config(&self) -> CodecConfig {
        CodecConfig::CuSzx { eb_abs: self.eb_abs }
    }

    fn encode(&mut self, data: &[f32], shape: Shape) -> Result<Vec<u8>, CodecError> {
        check_input(data, shape)?;
        Ok(Self::serialize(&self.inner.compress(data, shape, self.eb_abs)))
    }

    fn decode(&mut self, bytes: &[u8], shape: Shape) -> Result<Vec<f32>, CodecError> {
        let stream = Self::parse(bytes).map_err(malformed)?;
        if stream.shape != shape {
            return Err(malformed("stored shape does not match chunk shape"));
        }
        let out = self.inner.decompress(&stream);
        check_len(out.len(), shape)?;
        Ok(out)
    }

    fn modeled_seconds(&self) -> f64 {
        self.inner.kernel_time()
    }
}

// ---------------------------------------------------------------------------
// cuZFP

/// cuZFP (fixed-rate) behind the [`Codec`] interface.
pub struct CuZfpCodec {
    inner: CuZfp,
    rate: f64,
}

impl CuZfpCodec {
    fn serialize(s: &CuZfpStream) -> Vec<u8> {
        let mut out = Vec::new();
        put_shape(&mut out, s.shape);
        wire::put_f64(&mut out, s.rate);
        wire::put_u64(&mut out, s.emax.len() as u64);
        for &e in &s.emax {
            wire::put_u32(&mut out, e as u32);
        }
        wire::put_u32s(&mut out, &s.payload);
        wire::put_u64(&mut out, s.words_per_block as u64);
        out
    }

    fn parse(bytes: &[u8]) -> Result<CuZfpStream, &'static str> {
        let mut c = Cursor::new(bytes);
        let shape = get_shape(&mut c)?;
        let rate = c.f64()?;
        let n = c.len(c.remaining() / 4)?;
        let emax = (0..n).map(|_| Ok(c.u32()? as i32)).collect::<Result<Vec<i32>, _>>()?;
        let payload = c.u32s()?;
        let words_per_block = c.u64()? as usize;
        c.done()?;
        if payload.len() != emax.len().saturating_mul(words_per_block) {
            return Err("payload length disagrees with block count");
        }
        Ok(CuZfpStream { shape, rate, emax, payload, words_per_block })
    }
}

impl Codec for CuZfpCodec {
    fn config(&self) -> CodecConfig {
        CodecConfig::CuZfp { rate: self.rate }
    }

    fn encode(&mut self, data: &[f32], shape: Shape) -> Result<Vec<u8>, CodecError> {
        check_input(data, shape)?;
        Ok(Self::serialize(&self.inner.compress(data, shape, self.rate)))
    }

    fn decode(&mut self, bytes: &[u8], shape: Shape) -> Result<Vec<f32>, CodecError> {
        let stream = Self::parse(bytes).map_err(malformed)?;
        if stream.shape != shape {
            return Err(malformed("stored shape does not match chunk shape"));
        }
        let out = self.inner.decompress(&stream);
        check_len(out.len(), shape)?;
        Ok(out)
    }

    fn modeled_seconds(&self) -> f64 {
        self.inner.kernel_time()
    }
}

// ---------------------------------------------------------------------------
// MGARD

/// MGARD-GPU behind the [`Codec`] interface (2D/3D chunks only).
pub struct MgardCodec {
    inner: Mgard,
    eb_abs: f64,
}

impl MgardCodec {
    fn serialize(s: &MgardStream) -> Vec<u8> {
        let mut out = Vec::new();
        put_shape(&mut out, s.shape);
        wire::put_f64(&mut out, s.step);
        wire::put_u64(&mut out, s.levels as u64);
        wire::put_bytes(&mut out, &s.compressed);
        out
    }

    fn parse(bytes: &[u8]) -> Result<MgardStream, &'static str> {
        let mut c = Cursor::new(bytes);
        let s = MgardStream {
            shape: get_shape(&mut c)?,
            step: c.f64()?,
            levels: c.u64()? as usize,
            compressed: c.bytes()?,
        };
        c.done()?;
        Ok(s)
    }
}

impl Codec for MgardCodec {
    fn config(&self) -> CodecConfig {
        CodecConfig::Mgard { eb_abs: self.eb_abs }
    }

    fn encode(&mut self, data: &[f32], shape: Shape) -> Result<Vec<u8>, CodecError> {
        check_input(data, shape)?;
        let stream = self
            .inner
            .compress(data, shape, self.eb_abs)
            .ok_or(CodecError::Unsupported("MGARD requires 2D or 3D chunks"))?;
        Ok(Self::serialize(&stream))
    }

    fn decode(&mut self, bytes: &[u8], shape: Shape) -> Result<Vec<f32>, CodecError> {
        let stream = Self::parse(bytes).map_err(malformed)?;
        if stream.shape != shape {
            return Err(malformed("stored shape does not match chunk shape"));
        }
        let out = self.inner.decompress(&stream);
        check_len(out.len(), shape)?;
        Ok(out)
    }

    fn modeled_seconds(&self) -> f64 {
        self.inner.kernel_time()
    }
}

// ---------------------------------------------------------------------------
// Lossless codecs over the chunk's f32 bytes.

/// Identity codec: raw little-endian f32 bytes.
pub struct RawCodec;

impl Codec for RawCodec {
    fn config(&self) -> CodecConfig {
        CodecConfig::Raw
    }

    fn encode(&mut self, data: &[f32], shape: Shape) -> Result<Vec<u8>, CodecError> {
        check_input(data, shape)?;
        Ok(f32s_to_le(data))
    }

    fn decode(&mut self, bytes: &[u8], shape: Shape) -> Result<Vec<f32>, CodecError> {
        let out = le_to_f32s(bytes)?;
        check_len(out.len(), shape)?;
        Ok(out)
    }
}

/// DEFLATE over the chunk's f32 bytes.
pub struct DeflateCodec;

impl Codec for DeflateCodec {
    fn config(&self) -> CodecConfig {
        CodecConfig::Deflate
    }

    fn encode(&mut self, data: &[f32], shape: Shape) -> Result<Vec<u8>, CodecError> {
        check_input(data, shape)?;
        Ok(deflate::compress(&f32s_to_le(data)))
    }

    fn decode(&mut self, bytes: &[u8], shape: Shape) -> Result<Vec<f32>, CodecError> {
        let raw =
            deflate::decompress(bytes).map_err(|_| malformed("DEFLATE stream did not decode"))?;
        let out = le_to_f32s(&raw)?;
        check_len(out.len(), shape)?;
        Ok(out)
    }
}

/// Bare LZ77 tokens over the chunk's f32 bytes.
pub struct Lz77Codec;

impl Codec for Lz77Codec {
    fn config(&self) -> CodecConfig {
        CodecConfig::Lz77
    }

    fn encode(&mut self, data: &[f32], shape: Shape) -> Result<Vec<u8>, CodecError> {
        check_input(data, shape)?;
        let tokens = lz77::tokenize(&f32s_to_le(data));
        let mut out = Vec::new();
        wire::put_u64(&mut out, tokens.len() as u64);
        for t in &tokens {
            match *t {
                Token::Literal(b) => out.extend_from_slice(&[0, b]),
                Token::Match { len, dist } => {
                    out.push(1);
                    out.extend_from_slice(&len.to_le_bytes());
                    out.extend_from_slice(&dist.to_le_bytes());
                }
            }
        }
        Ok(out)
    }

    fn decode(&mut self, bytes: &[u8], shape: Shape) -> Result<Vec<f32>, CodecError> {
        let mut c = Cursor::new(bytes);
        let n = c.len(c.remaining()).map_err(malformed)?;
        let mut tokens = Vec::with_capacity(n);
        for _ in 0..n {
            let tag = c.take(1).map_err(malformed)?[0];
            tokens.push(match tag {
                0 => Token::Literal(c.take(1).map_err(malformed)?[0]),
                1 => {
                    let len = u16::from_le_bytes(c.take(2).map_err(malformed)?.try_into().unwrap());
                    let dist =
                        u16::from_le_bytes(c.take(2).map_err(malformed)?.try_into().unwrap());
                    if dist == 0 {
                        return Err(malformed("LZ77 match with zero distance"));
                    }
                    Token::Match { len, dist }
                }
                _ => return Err(malformed("unknown LZ77 token tag")),
            });
        }
        c.done().map_err(malformed)?;
        let out = le_to_f32s(&lz77::detokenize(&tokens))?;
        check_len(out.len(), shape)?;
        Ok(out)
    }
}

/// Run-length encoding over the chunk's u16 view (two symbols per f32).
pub struct RleCodec;

fn f32s_to_u16s(data: &[f32]) -> Vec<u16> {
    let mut out = Vec::with_capacity(data.len() * 2);
    for v in data {
        let b = v.to_le_bytes();
        out.push(u16::from_le_bytes([b[0], b[1]]));
        out.push(u16::from_le_bytes([b[2], b[3]]));
    }
    out
}

impl Codec for RleCodec {
    fn config(&self) -> CodecConfig {
        CodecConfig::Rle
    }

    fn encode(&mut self, data: &[f32], shape: Shape) -> Result<Vec<u8>, CodecError> {
        check_input(data, shape)?;
        let runs = rle::encode(&f32s_to_u16s(data));
        let mut out = Vec::new();
        wire::put_u64(&mut out, runs.len() as u64);
        for &(sym, count) in &runs {
            out.extend_from_slice(&sym.to_le_bytes());
            wire::put_u32(&mut out, count);
        }
        Ok(out)
    }

    fn decode(&mut self, bytes: &[u8], shape: Shape) -> Result<Vec<f32>, CodecError> {
        let mut c = Cursor::new(bytes);
        let n = c.len(c.remaining() / 6).map_err(malformed)?;
        let runs = (0..n)
            .map(|_| {
                let sym = u16::from_le_bytes(c.take(2)?.try_into().unwrap());
                Ok((sym, c.u32()?))
            })
            .collect::<Result<Vec<rle::Run>, &'static str>>()
            .map_err(malformed)?;
        c.done().map_err(malformed)?;
        let symbols = rle::decode(&runs);
        if symbols.len() != volume(shape) * 2 {
            return Err(malformed("decoded symbol count does not match chunk shape"));
        }
        let out: Vec<f32> = symbols
            .chunks_exact(2)
            .map(|p| {
                let lo = p[0].to_le_bytes();
                let hi = p[1].to_le_bytes();
                f32::from_le_bytes([lo[0], lo[1], hi[0], hi[1]])
            })
            .collect();
        Ok(out)
    }
}

/// Byte-wise Huffman (cuSZ's chunked layout) over the chunk's f32 bytes.
pub struct HuffmanCodec;

/// Symbols per independent Huffman chunk.
const HUFF_CHUNK: usize = 4096;

impl Codec for HuffmanCodec {
    fn config(&self) -> CodecConfig {
        CodecConfig::Huffman
    }

    fn encode(&mut self, data: &[f32], shape: Shape) -> Result<Vec<u8>, CodecError> {
        check_input(data, shape)?;
        let symbols: Vec<u16> = f32s_to_le(data).iter().map(|&b| b as u16).collect();
        let mut hist = vec![0u32; 256];
        for &s in &symbols {
            hist[s as usize] += 1;
        }
        let book =
            Codebook::from_histogram(&hist).map_err(|_| CodecError::Unsupported("empty chunk"))?;
        let encoded = huffman::encode_chunked(&book, &symbols, HUFF_CHUNK)
            .map_err(|_| CodecError::Unsupported("huffman encode failed"))?;
        let mut out = Vec::new();
        put_book(&mut out, &book);
        put_chunked(&mut out, &encoded);
        Ok(out)
    }

    fn decode(&mut self, bytes: &[u8], shape: Shape) -> Result<Vec<f32>, CodecError> {
        let mut c = Cursor::new(bytes);
        let book = get_book(&mut c).map_err(malformed)?;
        let encoded = get_chunked(&mut c).map_err(malformed)?;
        c.done().map_err(malformed)?;
        let symbols = huffman::decode_chunked(&book, &encoded)
            .map_err(|_| malformed("huffman stream did not decode"))?;
        if symbols.iter().any(|&s| s > 255) {
            return Err(malformed("byte symbol out of range"));
        }
        let raw: Vec<u8> = symbols.iter().map(|&s| s as u8).collect();
        let out = le_to_f32s(&raw)?;
        check_len(out.len(), shape)?;
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// Registry factory

/// Factory for every built-in codec ([`crate::codec::Registry::builtin`]
/// registers each name to this function).
pub fn build_builtin(cfg: &CodecConfig, spec: DeviceSpec) -> Result<Box<dyn Codec>, CodecError> {
    Ok(match *cfg {
        CodecConfig::Fz { eb_abs } => Box::new(FzCodec::new(spec, eb_abs)),
        CodecConfig::CuSz { eb_abs } => Box::new(CuSzCodec { inner: CuSz::new(spec), eb_abs }),
        CodecConfig::CuSzRle { eb_abs } => {
            Box::new(CuSzRleCodec { inner: CuSzRle::new(spec), eb_abs })
        }
        CodecConfig::CuSzx { eb_abs } => Box::new(CuSzxCodec { inner: CuSzx::new(spec), eb_abs }),
        CodecConfig::CuZfp { rate } => Box::new(CuZfpCodec { inner: CuZfp::new(spec), rate }),
        CodecConfig::Mgard { eb_abs } => Box::new(MgardCodec { inner: Mgard::new(spec), eb_abs }),
        CodecConfig::SzOmp { eb_abs } => Box::new(SzOmpCodec { inner: SzOmp, eb_abs }),
        CodecConfig::Huffman => Box::new(HuffmanCodec),
        CodecConfig::Rle => Box::new(RleCodec),
        CodecConfig::Lz77 => Box::new(Lz77Codec),
        CodecConfig::Deflate => Box::new(DeflateCodec),
        CodecConfig::Raw => Box::new(RawCodec),
        CodecConfig::Custom { ref name, .. } => return Err(CodecError::UnknownCodec(name.clone())),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::Registry;
    use fzgpu_sim::device::A100;

    fn field(n: usize) -> Vec<f32> {
        (0..n).map(|i| (i as f32 * 0.01).sin() * 3.0 + (i % 7) as f32 * 0.1).collect()
    }

    #[test]
    fn every_builtin_codec_roundtrips_a_3d_chunk() {
        let shape = (8, 16, 16);
        let data = field(8 * 16 * 16);
        let reg = Registry::builtin();
        let configs = [
            CodecConfig::Fz { eb_abs: 1e-3 },
            CodecConfig::CuSz { eb_abs: 1e-3 },
            CodecConfig::CuSzRle { eb_abs: 1e-3 },
            CodecConfig::CuSzx { eb_abs: 1e-3 },
            CodecConfig::CuZfp { rate: 16.0 },
            CodecConfig::Mgard { eb_abs: 1e-2 },
            CodecConfig::SzOmp { eb_abs: 1e-3 },
            CodecConfig::Huffman,
            CodecConfig::Rle,
            CodecConfig::Lz77,
            CodecConfig::Deflate,
            CodecConfig::Raw,
        ];
        for cfg in configs {
            let mut codec = reg.build(&cfg, A100).unwrap();
            let bytes = codec.encode(&data, shape).unwrap();
            let back = codec.decode(&bytes, shape).unwrap();
            assert_eq!(back.len(), data.len(), "{}", cfg.name());
            if cfg.lossless() {
                assert!(
                    data.iter().zip(&back).all(|(a, b)| a.to_bits() == b.to_bits()),
                    "{} must be bit-exact",
                    cfg.name()
                );
            } else if let Some(eb) = cfg.eb_abs() {
                for (i, (&a, &b)) in data.iter().zip(&back).enumerate() {
                    assert!(
                        (a - b).abs() as f64 <= eb * 1.05,
                        "{} out of bound at {i}: {a} vs {b}",
                        cfg.name()
                    );
                }
            }
        }
    }

    #[test]
    fn shape_support_is_reported_not_panicked() {
        let data = field(64);
        let reg = Registry::builtin();
        let mut mgard = reg.build(&CodecConfig::Mgard { eb_abs: 1e-2 }, A100).unwrap();
        assert!(matches!(mgard.encode(&data, (1, 1, 64)).unwrap_err(), CodecError::Unsupported(_)));
        let mut szomp = reg.build(&CodecConfig::SzOmp { eb_abs: 1e-3 }, A100).unwrap();
        assert!(matches!(szomp.encode(&data, (1, 8, 8)).unwrap_err(), CodecError::Unsupported(_)));
    }

    #[test]
    fn truncated_streams_decode_to_errors() {
        let shape = (1, 8, 32);
        let data = field(256);
        let reg = Registry::builtin();
        for cfg in [
            CodecConfig::CuSz { eb_abs: 1e-3 },
            CodecConfig::CuSzx { eb_abs: 1e-3 },
            CodecConfig::CuZfp { rate: 8.0 },
            CodecConfig::Rle,
            CodecConfig::Lz77,
        ] {
            let mut codec = reg.build(&cfg, A100).unwrap();
            let bytes = codec.encode(&data, shape).unwrap();
            for cut in [0, 3, bytes.len() / 2, bytes.len().saturating_sub(1)] {
                assert!(
                    codec.decode(&bytes[..cut], shape).is_err(),
                    "{} accepted a truncated stream at {cut}",
                    cfg.name()
                );
            }
        }
    }
}
