//! The chunked array store: an n-D field, chunked by a [`ChunkGrid`],
//! each chunk encoded by one [`Codec`], packed into an archive-v3 sharded
//! container behind a [`StorageBackend`].
//!
//! Container layout (`FZST` v1):
//!
//! ```text
//! [magic "FZST"][u32 version=1][u64 meta_len][meta JSON][archive bytes]
//! ```
//!
//! The meta JSON carries dims, chunk shape, the resolved codec config and
//! the shard size; the archive bytes are a v3 sharded archive
//! ([`fzgpu_core::ShardedArchive`]) — v1/v2 archives are also accepted on
//! read (fully fetched, no partial path).
//!
//! **Partial decode**: [`ArrayStore::read_region`] fetches the container
//! header and top directory once at open, then per read touches only the
//! inner indexes of intersecting shards and the byte ranges of
//! intersecting chunks. The backend's byte accounting (and the
//! `fzgpu_store_*` Det metrics) therefore scale with the request, not the
//! array — asserted by the test suite and the store bench.

use fzgpu_core::archive::{
    ARCHIVE_MAGIC, ARCHIVE_VERSION_V3, V3_DIR_ENTRY_BYTES, V3_DIR_HEADER_BYTES,
    V3_INNER_ENTRY_BYTES, V3_INNER_HEADER_BYTES,
};
use fzgpu_core::{crc32, Archive, ChunkMeta, FormatError, Shape, Shard, ShardedArchive};
use fzgpu_sim::DeviceSpec;
use fzgpu_trace::json::{self, Value};
use fzgpu_trace::metrics::{counter_add, Class};

use crate::backend::{BackendStats, StorageBackend};
use crate::codec::{Codec, CodecConfig, CodecError, Registry};
use crate::grid::{copy_region, ChunkGrid, Region};

/// Store container magic.
pub const STORE_MAGIC: [u8; 4] = *b"FZST";
/// Container version written by [`ArrayStore::create`].
pub const STORE_VERSION: u32 = 1;
/// Fixed container prefix: magic + version + meta length.
pub const STORE_HEADER_BYTES: u64 = 16;

/// Store-level failures.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// Backend I/O failure (path + OS error).
    Io(String),
    /// The request itself is invalid (bad region, bad spec...).
    BadRequest(String),
    /// Stored bytes are damaged or inconsistent.
    Corrupt(String),
    /// A codec refused or failed.
    Codec(CodecError),
    /// An archive/stream-level parse failure.
    Format(FormatError),
}

impl core::fmt::Display for StoreError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "{e}"),
            StoreError::BadRequest(e) => write!(f, "{e}"),
            StoreError::Corrupt(e) => write!(f, "corrupt store: {e}"),
            StoreError::Codec(e) => write!(f, "{e}"),
            StoreError::Format(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<CodecError> for StoreError {
    fn from(e: CodecError) -> Self {
        StoreError::Codec(e)
    }
}

impl From<FormatError> for StoreError {
    fn from(e: FormatError) -> Self {
        StoreError::Format(e)
    }
}

/// Everything needed to (re)build a store: geometry + codec + sharding.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreSpec {
    /// Field extents per axis (C order, last axis fastest).
    pub dims: Vec<usize>,
    /// Chunk extents per axis.
    pub chunk: Vec<usize>,
    /// Chunk codec (error bounds already resolved to absolute).
    pub codec: CodecConfig,
    /// Chunks per shard in the v3 archive.
    pub chunks_per_shard: usize,
}

impl StoreSpec {
    /// Serialize as the container's meta JSON (sorted keys).
    pub fn to_json(&self) -> String {
        let list = |v: &[usize]| {
            let items: Vec<String> = v.iter().map(usize::to_string).collect();
            format!("[{}]", items.join(","))
        };
        format!(
            "{{\"chunk\":{},\"chunks_per_shard\":{},\"codec\":{},\"dims\":{},\"v\":{}}}",
            list(&self.chunk),
            self.chunks_per_shard,
            self.codec.to_json(),
            list(&self.dims),
            STORE_VERSION,
        )
    }

    /// Parse the container's meta JSON.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = json::parse(text)?;
        let ver = v.get("v").and_then(Value::as_f64).ok_or("store meta missing \"v\"")?;
        if ver != STORE_VERSION as f64 {
            return Err(format!("unsupported store meta version {ver}"));
        }
        let ints = |key: &str| -> Result<Vec<usize>, String> {
            v.get(key)
                .and_then(Value::as_array)
                .ok_or(format!("store meta missing {key:?}"))?
                .iter()
                .map(|x| {
                    x.as_f64()
                        .filter(|&f| f >= 0.0 && f.fract() == 0.0)
                        .map(|f| f as usize)
                        .ok_or(format!("store meta {key:?} must hold non-negative integers"))
                })
                .collect()
        };
        let codec = CodecConfig::from_json(v.get("codec").ok_or("store meta missing \"codec\"")?)?;
        let cps =
            v.get("chunks_per_shard")
                .and_then(Value::as_f64)
                .filter(|&f| f >= 1.0 && f.fract() == 0.0)
                .ok_or("store meta missing a positive \"chunks_per_shard\"")? as usize;
        Ok(Self { dims: ints("dims")?, chunk: ints("chunk")?, codec, chunks_per_shard: cps })
    }
}

/// One read's outcome plus its deterministic I/O accounting.
#[derive(Debug, Clone)]
pub struct ReadResult {
    /// The requested subregion, C order.
    pub values: Vec<f32>,
    /// Backend bytes fetched by this read.
    pub bytes_read: u64,
    /// Backend range requests issued by this read.
    pub backend_reads: u64,
    /// Chunks decoded.
    pub chunks_decoded: usize,
    /// Shards whose inner index was fetched.
    pub shards_touched: usize,
    /// Modeled backend seconds charged (object store model; 0 otherwise).
    pub modeled_io_seconds: f64,
    /// Modeled codec seconds charged by chunk decodes.
    pub modeled_codec_seconds: f64,
}

/// CRC-32 over the little-endian bit patterns of `values` — the digest
/// the determinism suite compares across thread counts, engines, and
/// pipeline paths.
pub fn value_digest(values: &[f32]) -> u32 {
    let mut bytes = Vec::with_capacity(values.len() * 4);
    for v in values {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    crc32(&bytes)
}

/// Map chunk extents to the 3D shape the codecs consume: rank 1–3 embed
/// naturally (leading axes = 1); higher ranks flatten to 1D.
pub fn shape3(extents: &[usize]) -> Shape {
    match extents.len() {
        1 => (1, 1, extents[0]),
        2 => (1, extents[0], extents[1]),
        3 => (extents[0], extents[1], extents[2]),
        _ => (1, 1, extents.iter().product()),
    }
}

/// How the archive region of the container is laid out.
enum Layout {
    /// v3: shards range-readable in place.
    Sharded {
        /// Absolute byte offset of each shard.
        shard_off: Vec<u64>,
        /// Chunk count of each shard.
        shard_chunks: Vec<usize>,
        /// Global index of each shard's first chunk.
        chunk_start: Vec<usize>,
    },
    /// v1/v2: the whole archive was fetched at open (no partial path).
    Flat {
        /// The parsed flat archive.
        archive: Archive,
    },
}

/// A chunked, compressed n-D array behind a storage backend.
pub struct ArrayStore {
    backend: Box<dyn StorageBackend>,
    spec: StoreSpec,
    grid: ChunkGrid,
    codec: Box<dyn Codec>,
    layout: Layout,
    total_values: usize,
}

impl ArrayStore {
    /// Compress `data` into a new container on `backend` and open it.
    /// Chunks are encoded in chunk-id order (deterministic at any thread
    /// count — parallelism lives inside the codecs).
    pub fn create(
        mut backend: Box<dyn StorageBackend>,
        spec: StoreSpec,
        data: &[f32],
        device: DeviceSpec,
    ) -> Result<Self, StoreError> {
        Self::create_with_registry(&Registry::builtin(), &mut backend, &spec, data, device)?;
        Self::open_with_registry(&Registry::builtin(), backend, device)
    }

    /// [`ArrayStore::create`] against a custom registry. Writes the
    /// container; callers reopen with the same registry.
    pub fn create_with_registry(
        registry: &Registry,
        backend: &mut Box<dyn StorageBackend>,
        spec: &StoreSpec,
        data: &[f32],
        device: DeviceSpec,
    ) -> Result<(), StoreError> {
        let grid = ChunkGrid::new(spec.dims.clone(), spec.chunk.clone())
            .map_err(StoreError::BadRequest)?;
        if data.len() != grid.total_values() {
            return Err(StoreError::BadRequest(format!(
                "data has {} values but dims {:?} require {}",
                data.len(),
                spec.dims,
                grid.total_values()
            )));
        }
        if spec.chunks_per_shard == 0 {
            return Err(StoreError::BadRequest("chunks_per_shard must be positive".into()));
        }
        let mut codec = registry.build(&spec.codec, device)?;
        let _root = fzgpu_trace::span("store.create")
            .field("chunks", grid.num_chunks())
            .field("codec", spec.codec.name());
        let mut chunks = Vec::with_capacity(grid.num_chunks());
        let mut meta = Vec::with_capacity(grid.num_chunks());
        for id in 0..grid.num_chunks() {
            let vals = grid.gather_chunk(data, id);
            let bytes = codec.encode(&vals, shape3(&grid.chunk_extents(id)))?;
            meta.push(ChunkMeta { n_values: vals.len(), crc: Some(crc32(&bytes)) });
            chunks.push(bytes);
        }
        let shards: Vec<Shard> = chunks
            .chunks(spec.chunks_per_shard)
            .zip(meta.chunks(spec.chunks_per_shard))
            .map(|(cs, ms)| Shard { chunks: cs.to_vec(), meta: ms.to_vec() })
            .collect();
        let archive = ShardedArchive { total_values: data.len(), shards };
        let meta_json = spec.to_json();
        let mut out = Vec::new();
        out.extend_from_slice(&STORE_MAGIC);
        out.extend_from_slice(&STORE_VERSION.to_le_bytes());
        out.extend_from_slice(&(meta_json.len() as u64).to_le_bytes());
        out.extend_from_slice(meta_json.as_bytes());
        out.extend_from_slice(&archive.to_bytes());
        backend.write_all(&out)
    }

    /// Open an existing container with the built-in codec registry.
    pub fn open(backend: Box<dyn StorageBackend>, device: DeviceSpec) -> Result<Self, StoreError> {
        Self::open_with_registry(&Registry::builtin(), backend, device)
    }

    /// Open with a custom registry (for out-of-tree codecs). Fetches only
    /// the container header, meta JSON, and the archive's top directory —
    /// chunk payloads stay on the backend until read.
    pub fn open_with_registry(
        registry: &Registry,
        mut backend: Box<dyn StorageBackend>,
        device: DeviceSpec,
    ) -> Result<Self, StoreError> {
        let hdr = backend.read_range(0, STORE_HEADER_BYTES)?;
        if hdr[..4] != STORE_MAGIC {
            return Err(StoreError::Corrupt("not a store container (bad magic)".into()));
        }
        let ver = u32::from_le_bytes(hdr[4..8].try_into().unwrap());
        if ver != STORE_VERSION {
            return Err(StoreError::Corrupt(format!(
                "unsupported store container version {ver} (this reader understands {STORE_VERSION})"
            )));
        }
        let meta_len = u64::from_le_bytes(hdr[8..16].try_into().unwrap());
        if STORE_HEADER_BYTES + meta_len > backend.len() {
            return Err(StoreError::Corrupt("meta length exceeds container".into()));
        }
        let meta_bytes = backend.read_range(STORE_HEADER_BYTES, meta_len)?;
        let meta_text = String::from_utf8(meta_bytes)
            .map_err(|_| StoreError::Corrupt("meta JSON is not UTF-8".into()))?;
        let spec = StoreSpec::from_json(&meta_text).map_err(StoreError::Corrupt)?;
        let grid =
            ChunkGrid::new(spec.dims.clone(), spec.chunk.clone()).map_err(StoreError::Corrupt)?;
        let codec = registry.build(&spec.codec, device)?;

        let arch_off = STORE_HEADER_BYTES + meta_len;
        let dir = backend.read_range(arch_off, V3_DIR_HEADER_BYTES as u64)?;
        if dir[..4] != ARCHIVE_MAGIC {
            return Err(StoreError::Corrupt("archive magic missing".into()));
        }
        let arch_ver = u32::from_le_bytes(dir[4..8].try_into().unwrap());
        let total_values = u64::from_le_bytes(dir[8..16].try_into().unwrap()) as usize;
        let layout = match arch_ver {
            ARCHIVE_VERSION_V3 => {
                let nshards = u64::from_le_bytes(dir[16..24].try_into().unwrap()) as usize;
                let tail_len = (nshards * V3_DIR_ENTRY_BYTES + 4) as u64;
                let tail = backend.read_range(arch_off + V3_DIR_HEADER_BYTES as u64, tail_len)?;
                let entries = &tail[..nshards * V3_DIR_ENTRY_BYTES];
                let stored =
                    u32::from_le_bytes(tail[nshards * V3_DIR_ENTRY_BYTES..].try_into().unwrap());
                let mut covered = dir.clone();
                covered.extend_from_slice(entries);
                if crc32(&covered) != stored {
                    return Err(StoreError::Corrupt("archive directory CRC mismatch".into()));
                }
                let mut shard_off = Vec::with_capacity(nshards);
                let mut shard_chunks = Vec::with_capacity(nshards);
                let mut chunk_start = Vec::with_capacity(nshards);
                let mut off = arch_off + ShardedArchive::payload_offset(nshards) as u64;
                let mut start = 0usize;
                for i in 0..nshards {
                    let at = i * V3_DIR_ENTRY_BYTES;
                    let len = u64::from_le_bytes(entries[at..at + 8].try_into().unwrap());
                    let nchunks =
                        u64::from_le_bytes(entries[at + 8..at + 16].try_into().unwrap()) as usize;
                    shard_off.push(off);
                    shard_chunks.push(nchunks);
                    chunk_start.push(start);
                    off += len;
                    start += nchunks;
                }
                if off > backend.len() {
                    return Err(StoreError::Corrupt("shard lengths exceed container".into()));
                }
                if start != grid.num_chunks() {
                    return Err(StoreError::Corrupt(format!(
                        "archive holds {start} chunks but the grid needs {}",
                        grid.num_chunks()
                    )));
                }
                Layout::Sharded { shard_off, shard_chunks, chunk_start }
            }
            // Legacy flat archives: fetch everything once; reads decode
            // from memory (correct, but provably not partial).
            1 | 2 => {
                let rest = backend.read_range(arch_off, backend.len() - arch_off)?;
                let archive = Archive::from_bytes(&rest)?;
                if archive.chunks.len() != grid.num_chunks() {
                    return Err(StoreError::Corrupt(format!(
                        "archive holds {} chunks but the grid needs {}",
                        archive.chunks.len(),
                        grid.num_chunks()
                    )));
                }
                Layout::Flat { archive }
            }
            v => return Err(StoreError::Format(FormatError::BadArchiveVersion(v))),
        };
        if total_values != grid.total_values() {
            return Err(StoreError::Corrupt(format!(
                "archive holds {total_values} values but dims {:?} require {}",
                spec.dims,
                grid.total_values()
            )));
        }
        Ok(Self { backend, spec, grid, codec, layout, total_values })
    }

    /// The store's spec (dims, chunking, codec, sharding).
    pub fn spec(&self) -> &StoreSpec {
        &self.spec
    }

    /// The chunk grid.
    pub fn grid(&self) -> &ChunkGrid {
        &self.grid
    }

    /// Total values in the field.
    pub fn total_values(&self) -> usize {
        self.total_values
    }

    /// Container size in bytes.
    pub fn container_bytes(&self) -> u64 {
        self.backend.len()
    }

    /// Backend accounting since the backend was constructed.
    pub fn backend_stats(&self) -> BackendStats {
        self.backend.stats()
    }

    /// Shard count (1 logical shard for legacy flat layouts).
    pub fn num_shards(&self) -> usize {
        match &self.layout {
            Layout::Sharded { shard_off, .. } => shard_off.len(),
            Layout::Flat { .. } => 1,
        }
    }

    /// Read the full field.
    pub fn read_full(&mut self) -> Result<ReadResult, StoreError> {
        self.read_region(&Region::full(&self.spec.dims.clone()))
    }

    /// Read an arbitrary subregion, touching only the shards and chunks
    /// it intersects.
    pub fn read_region(&mut self, region: &Region) -> Result<ReadResult, StoreError> {
        region.validate(&self.grid.dims).map_err(StoreError::BadRequest)?;
        let _root = fzgpu_trace::span("store.read")
            .field("values", region.count())
            .field("codec", self.spec.codec.name());
        let before = self.backend.stats();
        let ids = self.grid.chunks_intersecting(region);
        let mut out = vec![0.0f32; region.count()];
        let mut codec_seconds = 0.0f64;
        let mut shards_touched = 0usize;
        // Snapshot the layout so the loops below can borrow `self`
        // mutably for backend reads and codec decodes.
        let plan = match &self.layout {
            Layout::Sharded { shard_off, shard_chunks, chunk_start } => Layout::Sharded {
                shard_off: shard_off.clone(),
                shard_chunks: shard_chunks.clone(),
                chunk_start: chunk_start.clone(),
            },
            Layout::Flat { archive } => Layout::Flat { archive: archive.clone() },
        };
        match &plan {
            Layout::Sharded { shard_off, shard_chunks, chunk_start } => {
                let mut i = 0usize;
                while i < ids.len() {
                    // The shard holding ids[i] (chunk_start ascending).
                    let s = match chunk_start.binary_search(&ids[i]) {
                        Ok(s) => s,
                        Err(ins) => ins - 1,
                    };
                    let nchunks = shard_chunks[s];
                    let idx_len =
                        (V3_INNER_HEADER_BYTES + nchunks * V3_INNER_ENTRY_BYTES + 4) as u64;
                    let idx = self.backend.read_range(shard_off[s], idx_len)?;
                    shards_touched += 1;
                    let declared = u64::from_le_bytes(idx[..8].try_into().unwrap()) as usize;
                    if declared != nchunks {
                        return Err(StoreError::Corrupt(format!(
                            "shard {s} index declares {declared} chunks, directory says {nchunks}"
                        )));
                    }
                    let crc_at = idx.len() - 4;
                    let stored = u32::from_le_bytes(idx[crc_at..].try_into().unwrap());
                    if crc32(&idx[..crc_at]) != stored {
                        return Err(StoreError::Corrupt(format!("shard {s} index CRC mismatch")));
                    }
                    // Chunk byte offsets within the shard.
                    let entry = |l: usize| {
                        let at = V3_INNER_HEADER_BYTES + l * V3_INNER_ENTRY_BYTES;
                        let len = u64::from_le_bytes(idx[at..at + 8].try_into().unwrap());
                        let crc = u32::from_le_bytes(idx[at + 16..at + 20].try_into().unwrap());
                        (len, crc)
                    };
                    let mut chunk_off = vec![shard_off[s] + Shard::payload_offset(nchunks) as u64];
                    for l in 0..nchunks {
                        let last = *chunk_off.last().unwrap();
                        chunk_off.push(last + entry(l).0);
                    }
                    // Every requested chunk living in this shard.
                    while i < ids.len() && ids[i] < chunk_start[s] + nchunks {
                        let id = ids[i];
                        let l = id - chunk_start[s];
                        let (len, crc) = entry(l);
                        let bytes = self.backend.read_range(chunk_off[l], len)?;
                        if crc32(&bytes) != crc {
                            return Err(StoreError::Corrupt(format!("chunk {id} CRC mismatch")));
                        }
                        codec_seconds += self.decode_into(id, &bytes, region, &mut out)?;
                        i += 1;
                    }
                }
            }
            Layout::Flat { archive } => {
                // Decode straight from the in-memory archive; chunk CRCs
                // (when the directory stored them) still gate each decode.
                for &id in &ids {
                    if let Some(stored) = archive.meta[id].crc {
                        if crc32(&archive.chunks[id]) != stored {
                            return Err(StoreError::Corrupt(format!("chunk {id} CRC mismatch")));
                        }
                    }
                    codec_seconds += self.decode_into(id, &archive.chunks[id], region, &mut out)?;
                }
            }
        }
        let after = self.backend.stats();
        counter_add(Class::Det, "fzgpu_store_reads_total", &[], 1);
        counter_add(Class::Det, "fzgpu_store_chunks_decoded_total", &[], ids.len() as u64);
        counter_add(Class::Det, "fzgpu_store_shards_touched_total", &[], shards_touched as u64);
        counter_add(Class::Det, "fzgpu_store_values_read_total", &[], out.len() as u64);
        Ok(ReadResult {
            values: out,
            bytes_read: after.bytes_read - before.bytes_read,
            backend_reads: after.reads - before.reads,
            chunks_decoded: ids.len(),
            shards_touched,
            modeled_io_seconds: after.modeled_seconds - before.modeled_seconds,
            modeled_codec_seconds: codec_seconds,
        })
    }

    /// Decode chunk `id` and scatter its intersection with `region` into
    /// `out`. Returns the codec's modeled seconds for the decode.
    fn decode_into(
        &mut self,
        id: usize,
        bytes: &[u8],
        region: &Region,
        out: &mut [f32],
    ) -> Result<f64, StoreError> {
        let bx = self.grid.chunk_box(id);
        let extents = bx.extents();
        let vals = self.codec.decode(bytes, shape3(&extents))?;
        let inter = bx
            .intersect(region)
            .ok_or_else(|| StoreError::Corrupt(format!("chunk {id} does not intersect request")))?;
        copy_region(&vals, &extents, &bx.lo, out, &region.extents(), &region.lo, &inter);
        Ok(self.codec.modeled_seconds())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;

    fn wave(n: usize) -> Vec<f32> {
        (0..n).map(|i| (i as f32 * 0.01).sin() * 10.0).collect()
    }

    fn mem_store(codec: CodecConfig) -> (ArrayStore, Vec<f32>) {
        let dims = vec![8, 9, 10];
        let data = wave(8 * 9 * 10);
        let spec = StoreSpec { dims, chunk: vec![4, 4, 4], codec, chunks_per_shard: 3 };
        let store =
            ArrayStore::create(Box::new(MemBackend::new()), spec, &data, fzgpu_sim::device::A100)
                .unwrap();
        (store, data)
    }

    #[test]
    fn roundtrip_full_and_partial_reads() {
        let (mut store, data) = mem_store(CodecConfig::Raw);
        let full = store.read_full().unwrap();
        assert_eq!(full.values, data);
        assert_eq!(full.chunks_decoded, store.grid().num_chunks());
        let r = Region { lo: vec![1, 2, 3], hi: vec![5, 7, 9] };
        let part = store.read_region(&r).unwrap();
        assert_eq!(part.values, store.grid().extract(&data, &r));
        assert!(part.chunks_decoded < full.chunks_decoded);
        assert!(
            part.bytes_read < full.bytes_read,
            "partial read fetched {} bytes, full read {}",
            part.bytes_read,
            full.bytes_read
        );
    }

    #[test]
    fn lossy_codec_respects_bound_on_partial_read() {
        let eb = 1e-3;
        let (mut store, data) = mem_store(CodecConfig::Fz { eb_abs: eb });
        let r = Region { lo: vec![0, 3, 2], hi: vec![8, 6, 10] };
        let got = store.read_region(&r).unwrap().values;
        let want = store.grid().extract(&data, &r);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() <= eb as f32 * 1.05, "{g} vs {w}");
        }
    }

    #[test]
    fn digests_are_stable_across_reopen() {
        let (mut store, _) = mem_store(CodecConfig::Raw);
        let r = Region { lo: vec![2, 0, 1], hi: vec![6, 9, 7] };
        let d1 = value_digest(&store.read_region(&r).unwrap().values);
        let bytes = store.backend.read_range(0, store.container_bytes()).unwrap();
        let mut reopened =
            ArrayStore::open(Box::new(MemBackend::from_bytes(bytes)), fzgpu_sim::device::A100)
                .unwrap();
        let d2 = value_digest(&reopened.read_region(&r).unwrap().values);
        assert_eq!(d1, d2);
    }

    #[test]
    fn legacy_flat_archives_open_and_read() {
        // Hand-build a container whose archive region is v2 (flat).
        let dims = vec![6, 8];
        let data = wave(48);
        let spec = StoreSpec {
            dims: dims.clone(),
            chunk: vec![3, 4],
            codec: CodecConfig::Raw,
            chunks_per_shard: 2,
        };
        let grid = ChunkGrid::new(spec.dims.clone(), spec.chunk.clone()).unwrap();
        let mut codec = Registry::builtin().build(&spec.codec, fzgpu_sim::device::A100).unwrap();
        let mut chunks = Vec::new();
        let mut meta = Vec::new();
        for id in 0..grid.num_chunks() {
            let vals = grid.gather_chunk(&data, id);
            let bytes = codec.encode(&vals, shape3(&grid.chunk_extents(id))).unwrap();
            meta.push(ChunkMeta { n_values: vals.len(), crc: Some(crc32(&bytes)) });
            chunks.push(bytes);
        }
        let archive = Archive { total_values: data.len(), chunks, meta };
        let meta_json = spec.to_json();
        let mut out = Vec::new();
        out.extend_from_slice(&STORE_MAGIC);
        out.extend_from_slice(&STORE_VERSION.to_le_bytes());
        out.extend_from_slice(&(meta_json.len() as u64).to_le_bytes());
        out.extend_from_slice(meta_json.as_bytes());
        out.extend_from_slice(&archive.to_bytes());
        let mut store =
            ArrayStore::open(Box::new(MemBackend::from_bytes(out)), fzgpu_sim::device::A100)
                .unwrap();
        assert_eq!(store.num_shards(), 1);
        let r = Region { lo: vec![1, 2], hi: vec![5, 7] };
        assert_eq!(store.read_region(&r).unwrap().values, grid.extract(&data, &r));
        assert_eq!(store.read_full().unwrap().values, data);
    }

    #[test]
    fn bad_requests_and_bad_containers_error() {
        let (mut store, _) = mem_store(CodecConfig::Raw);
        // OOB region.
        let err = store.read_region(&Region { lo: vec![0, 0, 0], hi: vec![9, 9, 10] }).unwrap_err();
        assert!(matches!(err, StoreError::BadRequest(_)), "{err}");
        // Rank mismatch.
        let err = store.read_region(&Region { lo: vec![0], hi: vec![8] }).unwrap_err();
        assert!(matches!(err, StoreError::BadRequest(_)), "{err}");
        // Not a container.
        let err = ArrayStore::open(
            Box::new(MemBackend::from_bytes(b"not a store at all".to_vec())),
            fzgpu_sim::device::A100,
        )
        .map(|_| ())
        .unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
        // Data/dims mismatch at create.
        let err = ArrayStore::create(
            Box::new(MemBackend::new()),
            StoreSpec {
                dims: vec![10],
                chunk: vec![4],
                codec: CodecConfig::Raw,
                chunks_per_shard: 1,
            },
            &[1.0, 2.0],
            fzgpu_sim::device::A100,
        )
        .map(|_| ())
        .unwrap_err();
        assert!(matches!(err, StoreError::BadRequest(_)), "{err}");
    }

    #[test]
    fn corrupt_shard_index_is_error_never_wrong_data() {
        let (mut store, data) = mem_store(CodecConfig::Raw);
        let n = store.container_bytes();
        let bytes = store.backend.read_range(0, n).unwrap();
        let r = Region { lo: vec![0, 0, 0], hi: vec![4, 4, 4] };
        let want = store.grid().extract(&data, &r);
        // Flip one byte at every offset in the archive region; each read
        // must either fail or return exactly the right values.
        let arch_off = bytes.len() - ShardedArchive::payload_offset(0); // lower bound only
        let _ = arch_off;
        for at in (16..bytes.len()).step_by(97) {
            let mut evil = bytes.clone();
            evil[at] ^= 0x40;
            let opened =
                ArrayStore::open(Box::new(MemBackend::from_bytes(evil)), fzgpu_sim::device::A100);
            let Ok(mut s) = opened else { continue };
            if let Ok(res) = s.read_region(&r) {
                assert_eq!(res.values, want, "byte {at} corrupted silently");
            }
        }
    }
}
