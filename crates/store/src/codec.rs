//! The unified codec interface: one trait, one config enum, one registry
//! covering the fzgpu pipeline, every baseline compressor, and the
//! lossless codecs — the "modular stage behind one interface" design the
//! cuSZ framework paper argues for.
//!
//! A [`CodecConfig`] is the serializable identity of a codec instance
//! (name + parameters, versioned hand-rolled JSON). A [`Codec`] is the
//! live instance built from a config by a [`Registry`]. The registry maps
//! codec names to factory functions; [`Registry::builtin`] pre-registers
//! everything in-tree and [`Registry::register`] accepts out-of-tree
//! codecs (the per-chunk codec-selection hook the 2025 orchestration
//! paper motivates).

use std::collections::BTreeMap;

use fzgpu_core::{FormatError, Shape};
use fzgpu_sim::DeviceSpec;
use fzgpu_trace::json::{self, Value};

/// Version of the codec-config wire schema ([`CodecConfig::to_json`]).
/// Parsers reject configs stamped with a different version so a future
/// schema never decodes silently wrong.
pub const CONFIG_VERSION: u32 = 1;

/// Why a codec could not encode or decode.
#[derive(Debug, Clone, PartialEq)]
pub enum CodecError {
    /// The codec cannot handle this configuration or chunk shape (e.g.
    /// MGARD on 1D chunks, error-bounded settings on cuZFP).
    Unsupported(&'static str),
    /// Stored bytes do not parse as this codec's stream.
    Malformed(&'static str),
    /// An fzgpu stream-level failure (CRC mismatch, truncation...).
    Format(FormatError),
    /// No registered codec matches the config's name.
    UnknownCodec(String),
}

impl core::fmt::Display for CodecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CodecError::Unsupported(what) => write!(f, "unsupported by codec: {what}"),
            CodecError::Malformed(what) => write!(f, "malformed codec stream: {what}"),
            CodecError::Format(e) => write!(f, "{e}"),
            CodecError::UnknownCodec(name) => write!(f, "unknown codec {name:?}"),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<FormatError> for CodecError {
    fn from(e: FormatError) -> Self {
        CodecError::Format(e)
    }
}

/// Serializable codec identity: which compressor, with which parameters.
///
/// Error bounds are stored *absolute* — a store resolves any relative
/// bound against the whole field at creation time (same semantics as
/// [`fzgpu_core::Archive::compress`]) so every chunk shares one bound.
#[derive(Debug, Clone, PartialEq)]
pub enum CodecConfig {
    /// The FZ-GPU pipeline (this repository's compressor).
    Fz {
        /// Absolute error bound.
        eb_abs: f64,
    },
    /// cuSZ: dual-quantization + Huffman.
    CuSz {
        /// Absolute error bound.
        eb_abs: f64,
    },
    /// cuSZ+RLE (CLUSTER'21 variant).
    CuSzRle {
        /// Absolute error bound.
        eb_abs: f64,
    },
    /// cuSZx: blockwise constant/non-constant bitwise compressor.
    CuSzx {
        /// Absolute error bound.
        eb_abs: f64,
    },
    /// cuZFP fixed-rate transform coding.
    CuZfp {
        /// Rate in bits per value.
        rate: f64,
    },
    /// MGARD-GPU multigrid refactoring (2D/3D chunks only).
    Mgard {
        /// Absolute error bound.
        eb_abs: f64,
    },
    /// SZ-OMP, the CPU SZ pipeline (3D chunks only).
    SzOmp {
        /// Absolute error bound.
        eb_abs: f64,
    },
    /// Lossless: byte-wise Huffman over the chunk's f32 bytes.
    Huffman,
    /// Lossless: run-length encoding over the chunk's u16 view.
    Rle,
    /// Lossless: LZ77 tokens over the chunk's f32 bytes.
    Lz77,
    /// Lossless: DEFLATE (LZ77 + Huffman) over the chunk's f32 bytes.
    Deflate,
    /// Identity — stores raw f32 bytes (baseline for ratio comparisons).
    Raw,
    /// An out-of-tree codec resolved through [`Registry::register`].
    Custom {
        /// Registered codec name.
        name: String,
        /// Opaque parameter string the factory interprets.
        params: String,
    },
}

impl CodecConfig {
    /// The codec's registry name.
    pub fn name(&self) -> &str {
        match self {
            CodecConfig::Fz { .. } => "fz",
            CodecConfig::CuSz { .. } => "cusz",
            CodecConfig::CuSzRle { .. } => "cusz-rle",
            CodecConfig::CuSzx { .. } => "cuszx",
            CodecConfig::CuZfp { .. } => "cuzfp",
            CodecConfig::Mgard { .. } => "mgard",
            CodecConfig::SzOmp { .. } => "sz-omp",
            CodecConfig::Huffman => "huffman",
            CodecConfig::Rle => "rle",
            CodecConfig::Lz77 => "lz77",
            CodecConfig::Deflate => "deflate",
            CodecConfig::Raw => "raw",
            CodecConfig::Custom { name, .. } => name,
        }
    }

    /// True when decode reproduces the input bit-exactly.
    pub fn lossless(&self) -> bool {
        matches!(
            self,
            CodecConfig::Huffman
                | CodecConfig::Rle
                | CodecConfig::Lz77
                | CodecConfig::Deflate
                | CodecConfig::Raw
        )
    }

    /// The absolute error bound, when this codec has one.
    pub fn eb_abs(&self) -> Option<f64> {
        match *self {
            CodecConfig::Fz { eb_abs }
            | CodecConfig::CuSz { eb_abs }
            | CodecConfig::CuSzRle { eb_abs }
            | CodecConfig::CuSzx { eb_abs }
            | CodecConfig::Mgard { eb_abs }
            | CodecConfig::SzOmp { eb_abs } => Some(eb_abs),
            _ => None,
        }
    }

    /// Build a config from CLI-style inputs: a codec name plus optional
    /// `--eb` / `--rate` values. Errors name the missing/extra knob.
    pub fn from_cli(name: &str, eb_abs: Option<f64>, rate: Option<f64>) -> Result<Self, String> {
        let need_eb = |tag: &str| {
            eb_abs.ok_or_else(|| format!("codec {tag} requires an error bound (--eb or --abs)"))
        };
        match name {
            "fz" => Ok(CodecConfig::Fz { eb_abs: need_eb("fz")? }),
            "cusz" => Ok(CodecConfig::CuSz { eb_abs: need_eb("cusz")? }),
            "cusz-rle" => Ok(CodecConfig::CuSzRle { eb_abs: need_eb("cusz-rle")? }),
            "cuszx" => Ok(CodecConfig::CuSzx { eb_abs: need_eb("cuszx")? }),
            "cuzfp" => Ok(CodecConfig::CuZfp { rate: rate.ok_or("codec cuzfp requires --rate")? }),
            "mgard" => Ok(CodecConfig::Mgard { eb_abs: need_eb("mgard")? }),
            "sz-omp" => Ok(CodecConfig::SzOmp { eb_abs: need_eb("sz-omp")? }),
            "huffman" => Ok(CodecConfig::Huffman),
            "rle" => Ok(CodecConfig::Rle),
            "lz77" => Ok(CodecConfig::Lz77),
            "deflate" => Ok(CodecConfig::Deflate),
            "raw" => Ok(CodecConfig::Raw),
            other => Err(format!("unknown codec {other:?}")),
        }
    }

    /// Serialize as versioned JSON, e.g.
    /// `{"codec":"fz","eb_abs":0.001,"v":1}`.
    pub fn to_json(&self) -> String {
        let mut fields: Vec<(String, String)> = vec![("codec".into(), json::escape(self.name()))];
        match self {
            CodecConfig::CuZfp { rate } => fields.push(("rate".into(), json::num(*rate))),
            CodecConfig::Custom { params, .. } => {
                fields.push(("params".into(), json::escape(params)))
            }
            _ => {
                if let Some(eb) = self.eb_abs() {
                    fields.push(("eb_abs".into(), json::num(eb)));
                }
            }
        }
        fields.push(("v".into(), CONFIG_VERSION.to_string()));
        fields.sort();
        let body: Vec<String> = fields.into_iter().map(|(k, v)| format!("\"{k}\":{v}")).collect();
        format!("{{{}}}", body.join(","))
    }

    /// Parse a config from its JSON [`Value`]. Rejects unknown schema
    /// versions by name so future configs fail loudly.
    pub fn from_json(v: &Value) -> Result<Self, String> {
        let ver = v.get("v").and_then(Value::as_f64).ok_or("codec config missing \"v\"")?;
        if ver != CONFIG_VERSION as f64 {
            return Err(format!(
                "unsupported codec config version {ver} (this reader understands {CONFIG_VERSION})"
            ));
        }
        let name = v.get("codec").and_then(Value::as_str).ok_or("codec config missing name")?;
        let eb = v.get("eb_abs").and_then(Value::as_f64);
        let rate = v.get("rate").and_then(Value::as_f64);
        match CodecConfig::from_cli(name, eb, rate) {
            Ok(cfg) => Ok(cfg),
            // Unknown names fall through to Custom so registered
            // out-of-tree codecs round-trip through store metadata.
            Err(_) if !name.is_empty() => Ok(CodecConfig::Custom {
                name: name.to_string(),
                params: v.get("params").and_then(Value::as_str).unwrap_or("").to_string(),
            }),
            Err(e) => Err(e),
        }
    }
}

/// A live codec instance: encodes one chunk of f32 values to bytes and
/// back. Implementations may carry device state (`&mut self`), but
/// encode/decode must be deterministic — same input, same bytes — across
/// thread counts, sim engines, and pipeline paths.
pub trait Codec {
    /// The config this instance was built from.
    fn config(&self) -> CodecConfig;

    /// Encode `data` (row-major, `shape` volume values) to bytes.
    fn encode(&mut self, data: &[f32], shape: Shape) -> Result<Vec<u8>, CodecError>;

    /// Decode bytes back to `shape` volume values.
    fn decode(&mut self, bytes: &[u8], shape: Shape) -> Result<Vec<f32>, CodecError>;

    /// Modeled device seconds charged by the most recent encode/decode
    /// (0 for host-only codecs). Deterministic — never wall time.
    fn modeled_seconds(&self) -> f64 {
        0.0
    }
}

/// Factory: build a codec instance from a config on a device.
pub type CodecFactory = fn(&CodecConfig, DeviceSpec) -> Result<Box<dyn Codec>, CodecError>;

/// Name → factory table. Deterministic iteration (BTreeMap) so listings
/// are stable.
pub struct Registry {
    factories: BTreeMap<String, CodecFactory>,
}

impl Registry {
    /// An empty registry (no codecs resolvable).
    pub fn empty() -> Self {
        Self { factories: BTreeMap::new() }
    }

    /// The built-in table: fzgpu, the five baselines (plus cuSZ+RLE), the
    /// lossless codecs, and `raw`.
    pub fn builtin() -> Self {
        let mut r = Self::empty();
        for name in BUILTIN_NAMES {
            r.register(name, crate::impls::build_builtin);
        }
        r
    }

    /// Register (or replace) a codec factory under `name`.
    pub fn register(&mut self, name: &str, factory: CodecFactory) {
        self.factories.insert(name.to_string(), factory);
    }

    /// Registered codec names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.factories.keys().map(String::as_str).collect()
    }

    /// Build a codec for `cfg` on `spec`.
    pub fn build(&self, cfg: &CodecConfig, spec: DeviceSpec) -> Result<Box<dyn Codec>, CodecError> {
        match self.factories.get(cfg.name()) {
            Some(f) => f(cfg, spec),
            None => Err(CodecError::UnknownCodec(cfg.name().to_string())),
        }
    }
}

/// Names [`Registry::builtin`] registers.
pub const BUILTIN_NAMES: &[&str] = &[
    "fz", "cusz", "cusz-rle", "cuszx", "cuzfp", "mgard", "sz-omp", "huffman", "rle", "lz77",
    "deflate", "raw",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_json_roundtrip() {
        let cases = [
            CodecConfig::Fz { eb_abs: 1e-3 },
            CodecConfig::CuSz { eb_abs: 0.5 },
            CodecConfig::CuZfp { rate: 8.0 },
            CodecConfig::Deflate,
            CodecConfig::Raw,
            CodecConfig::Custom { name: "wavelet".into(), params: "db4".into() },
        ];
        for cfg in cases {
            let text = cfg.to_json();
            let v = json::parse(&text).unwrap();
            assert_eq!(CodecConfig::from_json(&v).unwrap(), cfg, "roundtrip of {text}");
        }
    }

    #[test]
    fn unknown_config_version_rejected_by_name() {
        let v = json::parse("{\"codec\":\"fz\",\"eb_abs\":0.001,\"v\":2}").unwrap();
        let err = CodecConfig::from_json(&v).unwrap_err();
        assert!(err.contains("codec config version 2"), "got: {err}");
    }

    #[test]
    fn cli_parse_validates_knobs() {
        assert!(CodecConfig::from_cli("fz", None, None).unwrap_err().contains("error bound"));
        assert!(CodecConfig::from_cli("cuzfp", Some(1e-3), None).unwrap_err().contains("--rate"));
        assert!(CodecConfig::from_cli("nope", None, None).unwrap_err().contains("unknown codec"));
        assert_eq!(CodecConfig::from_cli("raw", None, None).unwrap(), CodecConfig::Raw);
    }

    #[test]
    fn builtin_names_all_resolve() {
        let r = Registry::builtin();
        assert_eq!(r.names().len(), BUILTIN_NAMES.len());
        for name in BUILTIN_NAMES {
            assert!(r.names().contains(name), "{name} missing from registry");
        }
    }
}
