//! `fzgpu-store` — the chunked-array store subsystem.
//!
//! This crate unifies every compressor in the workspace — the fzgpu
//! pipeline, the five baselines, and the lossless codecs — behind one
//! versioned [`Codec`] trait with a pluggable [`Registry`], then layers a
//! chunked n-D array container on top:
//!
//! - [`ChunkGrid`] / [`Region`] — n-D chunking and subregion math.
//! - [`ArrayStore`] — the `FZST` container: meta JSON + an archive-v3
//!   sharded chunk index, with **partial decode** that touches only the
//!   shards/chunks a request intersects.
//! - [`StorageBackend`] — in-memory, filesystem, and a simulated object
//!   store with a deterministic latency/throughput model.
//!
//! Everything is deterministic: chunk encode order is fixed, all modeled
//! costs live in modeled-seconds (never wall time), and byte-level I/O is
//! accounted in Det-class `fzgpu_store_*` metrics so tests can prove
//! partial decode reads less than a full decode.

pub mod backend;
pub mod codec;
pub mod grid;
pub mod impls;
pub mod store;
pub mod wire;

pub use backend::{
    BackendStats, FsBackend, MemBackend, ObjectStoreBackend, ObjectStoreModel, StorageBackend,
};
pub use codec::{Codec, CodecConfig, CodecError, CodecFactory, Registry, BUILTIN_NAMES};
pub use grid::{copy_region, ChunkGrid, Region};
pub use store::{
    shape3, value_digest, ArrayStore, ReadResult, StoreError, StoreSpec, STORE_MAGIC, STORE_VERSION,
};

/// Build a backend by CLI name. `path` is required for `"fs"` and ignored
/// otherwise.
pub fn backend_from_cli(name: &str, path: Option<&str>) -> Result<Box<dyn StorageBackend>, String> {
    match name {
        "mem" => Ok(Box::new(MemBackend::new())),
        "objsim" => Ok(Box::new(ObjectStoreBackend::new())),
        "fs" => {
            let p = path.ok_or("backend \"fs\" requires a path (--path)")?;
            Ok(Box::new(FsBackend::new(p)))
        }
        other => Err(format!("unknown backend {other:?} (expected mem, fs, or objsim)")),
    }
}
