//! n-dimensional chunk grid: maps a rectangular field onto a regular grid
//! of chunks (C-order / row-major, last axis fastest — matching
//! `fzgpu-data`'s layout) and computes which chunks a subregion
//! intersects. All index math is plain integer arithmetic; no chunk data
//! is touched here.

/// A half-open n-D box `[lo, hi)` in global coordinates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// Inclusive lower corner, one entry per axis.
    pub lo: Vec<usize>,
    /// Exclusive upper corner, one entry per axis.
    pub hi: Vec<usize>,
}

impl Region {
    /// The whole box of a field with the given dims.
    pub fn full(dims: &[usize]) -> Self {
        Self { lo: vec![0; dims.len()], hi: dims.to_vec() }
    }

    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.lo.len()
    }

    /// Extent per axis.
    pub fn extents(&self) -> Vec<usize> {
        self.lo.iter().zip(&self.hi).map(|(&l, &h)| h - l).collect()
    }

    /// Total values in the box.
    pub fn count(&self) -> usize {
        self.lo.iter().zip(&self.hi).map(|(&l, &h)| h - l).product()
    }

    /// Check the region is well-formed and inside `dims`. The error
    /// string names the offending axis.
    pub fn validate(&self, dims: &[usize]) -> Result<(), String> {
        if self.lo.len() != dims.len() || self.hi.len() != dims.len() {
            return Err(format!(
                "region rank {} does not match array rank {}",
                self.lo.len().max(self.hi.len()),
                dims.len()
            ));
        }
        for (a, &dim) in dims.iter().enumerate() {
            if self.lo[a] >= self.hi[a] {
                return Err(format!(
                    "region is empty on axis {a} ({}..{})",
                    self.lo[a], self.hi[a]
                ));
            }
            if self.hi[a] > dim {
                return Err(format!(
                    "region {}..{} exceeds axis {a} extent {dim}",
                    self.lo[a], self.hi[a]
                ));
            }
        }
        Ok(())
    }

    /// Intersection with another box, `None` when disjoint.
    pub fn intersect(&self, other: &Region) -> Option<Region> {
        let lo: Vec<usize> = self.lo.iter().zip(&other.lo).map(|(&a, &b)| a.max(b)).collect();
        let hi: Vec<usize> = self.hi.iter().zip(&other.hi).map(|(&a, &b)| a.min(b)).collect();
        if lo.iter().zip(&hi).any(|(&l, &h)| l >= h) {
            return None;
        }
        Some(Region { lo, hi })
    }
}

/// A regular chunking of an n-D field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkGrid {
    /// Field extents per axis.
    pub dims: Vec<usize>,
    /// Chunk extents per axis (edge chunks are clamped).
    pub chunk: Vec<usize>,
}

impl ChunkGrid {
    /// Build a grid; rejects rank mismatches and zero extents.
    pub fn new(dims: Vec<usize>, chunk: Vec<usize>) -> Result<Self, String> {
        if dims.is_empty() {
            return Err("array rank must be at least 1".into());
        }
        if dims.len() != chunk.len() {
            return Err(format!(
                "chunk rank {} does not match array rank {}",
                chunk.len(),
                dims.len()
            ));
        }
        for a in 0..dims.len() {
            if dims[a] == 0 {
                return Err(format!("axis {a} has zero extent"));
            }
            if chunk[a] == 0 {
                return Err(format!("chunk extent on axis {a} is zero"));
            }
        }
        Ok(Self { dims, chunk })
    }

    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total values in the field.
    pub fn total_values(&self) -> usize {
        self.dims.iter().product()
    }

    /// Chunks per axis.
    pub fn chunk_counts(&self) -> Vec<usize> {
        self.dims.iter().zip(&self.chunk).map(|(&d, &c)| d.div_ceil(c)).collect()
    }

    /// Total chunk count.
    pub fn num_chunks(&self) -> usize {
        self.chunk_counts().iter().product()
    }

    /// The grid coordinate of chunk `id` (row-major over chunk counts).
    fn chunk_coord(&self, id: usize) -> Vec<usize> {
        let counts = self.chunk_counts();
        let mut rem = id;
        let mut coord = vec![0; counts.len()];
        for a in (0..counts.len()).rev() {
            coord[a] = rem % counts[a];
            rem /= counts[a];
        }
        coord
    }

    /// The global box chunk `id` covers (clamped at field edges).
    pub fn chunk_box(&self, id: usize) -> Region {
        let coord = self.chunk_coord(id);
        let lo: Vec<usize> = coord.iter().zip(&self.chunk).map(|(&c, &s)| c * s).collect();
        let hi: Vec<usize> = lo
            .iter()
            .zip(&self.chunk)
            .zip(&self.dims)
            .map(|((&l, &s), &d)| (l + s).min(d))
            .collect();
        Region { lo, hi }
    }

    /// The extents of chunk `id` (edge chunks may be short).
    pub fn chunk_extents(&self, id: usize) -> Vec<usize> {
        self.chunk_box(id).extents()
    }

    /// Chunk ids (sorted ascending) whose boxes intersect `region`.
    pub fn chunks_intersecting(&self, region: &Region) -> Vec<usize> {
        let counts = self.chunk_counts();
        // Per-axis chunk index ranges the region spans.
        let lo: Vec<usize> = region.lo.iter().zip(&self.chunk).map(|(&l, &c)| l / c).collect();
        let hi: Vec<usize> =
            region.hi.iter().zip(&self.chunk).map(|(&h, &c)| (h - 1) / c + 1).collect();
        let mut out = Vec::new();
        let mut coord = lo.clone();
        'outer: loop {
            let mut id = 0usize;
            for a in 0..counts.len() {
                id = id * counts[a] + coord[a];
            }
            out.push(id);
            // Odometer increment, last axis fastest (C order → ascending ids).
            for a in (0..coord.len()).rev() {
                coord[a] += 1;
                if coord[a] < hi[a] {
                    continue 'outer;
                }
                coord[a] = lo[a];
                if a == 0 {
                    break 'outer;
                }
            }
        }
        out
    }

    /// Gather the values of chunk `id` out of the full field (C order).
    pub fn gather_chunk(&self, data: &[f32], id: usize) -> Vec<f32> {
        let bx = self.chunk_box(id);
        let mut out = vec![0.0f32; bx.count()];
        copy_region(data, &self.dims, &vec![0; self.rank()], &mut out, &bx.extents(), &bx.lo, &bx);
        out
    }

    /// Extract an arbitrary region out of the full field (C order).
    pub fn extract(&self, data: &[f32], region: &Region) -> Vec<f32> {
        let mut out = vec![0.0f32; region.count()];
        copy_region(
            data,
            &self.dims,
            &vec![0; self.rank()],
            &mut out,
            &region.extents(),
            &region.lo,
            region,
        );
        out
    }
}

/// Copy the global box `region` from a source window to a destination
/// window. `src` holds a C-order array of `src_shape` whose origin sits at
/// `src_origin` in global coordinates; likewise for `dst`. `region` must
/// lie inside both windows. Rows along the last axis copy contiguously.
pub fn copy_region(
    src: &[f32],
    src_shape: &[usize],
    src_origin: &[usize],
    dst: &mut [f32],
    dst_shape: &[usize],
    dst_origin: &[usize],
    region: &Region,
) {
    let rank = region.rank();
    debug_assert_eq!(src_shape.len(), rank);
    debug_assert_eq!(dst_shape.len(), rank);
    let strides = |shape: &[usize]| -> Vec<usize> {
        let mut s = vec![1usize; rank];
        for a in (0..rank.saturating_sub(1)).rev() {
            s[a] = s[a + 1] * shape[a + 1];
        }
        s
    };
    let src_strides = strides(src_shape);
    let dst_strides = strides(dst_shape);
    let row = region.hi[rank - 1] - region.lo[rank - 1];
    // Odometer over every axis but the last.
    let mut idx = region.lo.clone();
    loop {
        let mut s_off = 0usize;
        let mut d_off = 0usize;
        for a in 0..rank {
            s_off += (idx[a] - src_origin[a]) * src_strides[a];
            d_off += (idx[a] - dst_origin[a]) * dst_strides[a];
        }
        dst[d_off..d_off + row].copy_from_slice(&src[s_off..s_off + row]);
        if rank == 1 {
            break;
        }
        let mut a = rank - 2;
        loop {
            idx[a] += 1;
            if idx[a] < region.hi[a] {
                break;
            }
            idx[a] = region.lo[a];
            if a == 0 {
                return;
            }
            a -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize) -> Vec<f32> {
        (0..n).map(|i| i as f32).collect()
    }

    #[test]
    fn grid_counts_and_edge_clamping() {
        let g = ChunkGrid::new(vec![10, 7], vec![4, 3]).unwrap();
        assert_eq!(g.chunk_counts(), vec![3, 3]);
        assert_eq!(g.num_chunks(), 9);
        // Last chunk in both axes is clamped: rows 8..10, cols 6..7.
        let bx = g.chunk_box(8);
        assert_eq!(bx, Region { lo: vec![8, 6], hi: vec![10, 7] });
        assert_eq!(g.chunk_extents(8), vec![2, 1]);
    }

    #[test]
    fn region_validation_names_the_axis() {
        let dims = [10usize, 7];
        assert!(Region { lo: vec![0, 0], hi: vec![10, 7] }.validate(&dims).is_ok());
        let err = Region { lo: vec![0, 3], hi: vec![10, 3] }.validate(&dims).unwrap_err();
        assert!(err.contains("axis 1"), "{err}");
        let err = Region { lo: vec![0, 0], hi: vec![11, 7] }.validate(&dims).unwrap_err();
        assert!(err.contains("axis 0"), "{err}");
        let err = Region { lo: vec![0], hi: vec![10] }.validate(&dims).unwrap_err();
        assert!(err.contains("rank"), "{err}");
    }

    #[test]
    fn intersecting_chunks_are_exact_and_sorted() {
        let g = ChunkGrid::new(vec![10, 7], vec![4, 3]).unwrap();
        // A region inside the middle chunk only.
        let r = Region { lo: vec![4, 3], hi: vec![6, 5] };
        assert_eq!(g.chunks_intersecting(&r), vec![4]);
        // Spanning all chunks.
        let r = Region::full(&g.dims);
        assert_eq!(g.chunks_intersecting(&r), (0..9).collect::<Vec<_>>());
        // The brute-force cross-check: every chunk either intersects or not.
        let r = Region { lo: vec![3, 2], hi: vec![9, 4] };
        let got = g.chunks_intersecting(&r);
        let want: Vec<usize> =
            (0..9).filter(|&id| g.chunk_box(id).intersect(&r).is_some()).collect();
        assert_eq!(got, want);
        assert!(got.windows(2).all(|w| w[0] < w[1]), "sorted ascending");
    }

    #[test]
    fn gather_extract_roundtrip_3d() {
        let g = ChunkGrid::new(vec![4, 6, 5], vec![2, 3, 2]).unwrap();
        let data = seq(4 * 6 * 5);
        // Reassembling every chunk must reproduce the field.
        let mut rebuilt = vec![-1.0f32; data.len()];
        for id in 0..g.num_chunks() {
            let bx = g.chunk_box(id);
            let vals = g.gather_chunk(&data, id);
            copy_region(&vals, &bx.extents(), &bx.lo, &mut rebuilt, &g.dims, &[0, 0, 0], &bx);
        }
        assert_eq!(rebuilt, data);
        // Extract matches direct indexing.
        let r = Region { lo: vec![1, 2, 1], hi: vec![3, 5, 4] };
        let got = g.extract(&data, &r);
        let mut want = Vec::new();
        for z in 1..3 {
            for y in 2..5 {
                for x in 1..4 {
                    want.push(data[(z * 6 + y) * 5 + x]);
                }
            }
        }
        assert_eq!(got, want);
    }

    #[test]
    fn rank_1_and_rank_4_grids_work() {
        let g = ChunkGrid::new(vec![11], vec![4]).unwrap();
        assert_eq!(g.num_chunks(), 3);
        let data = seq(11);
        assert_eq!(g.gather_chunk(&data, 2), vec![8.0, 9.0, 10.0]);
        let g4 = ChunkGrid::new(vec![2, 3, 2, 4], vec![1, 2, 2, 2]).unwrap();
        let data = seq(2 * 3 * 2 * 4);
        let r = Region { lo: vec![0, 1, 0, 1], hi: vec![2, 3, 1, 3] };
        let got = g4.extract(&data, &r);
        assert_eq!(got.len(), r.count());
        let ids = g4.chunks_intersecting(&r);
        let want: Vec<usize> =
            (0..g4.num_chunks()).filter(|&id| g4.chunk_box(id).intersect(&r).is_some()).collect();
        assert_eq!(ids, want);
    }

    #[test]
    fn bad_grids_are_rejected() {
        assert!(ChunkGrid::new(vec![], vec![]).is_err());
        assert!(ChunkGrid::new(vec![4, 4], vec![2]).is_err());
        assert!(ChunkGrid::new(vec![4, 0], vec![2, 2]).is_err());
        assert!(ChunkGrid::new(vec![4, 4], vec![2, 0]).is_err());
    }
}
