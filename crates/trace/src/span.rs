//! Structured host-side spans: RAII guards collecting into thread-local
//! buffers, with a deterministic merge rule for work that fans out over
//! the thread pool.
//!
//! # Model
//!
//! A capture window is opened with [`begin_capture`] and closed with
//! [`end_capture`], which returns the recorded [`Trace`]. Inside the
//! window, [`span`] opens a nested span (closed when the guard drops) and
//! [`event`] records an instantaneous marker. Both accept `key=value`
//! fields. Outside a window every call is a cheap no-op — instrumentation
//! stays compiled in and costs one relaxed atomic load.
//!
//! # Clock domain
//!
//! Span timestamps are **real host wallclock** (nanoseconds since the
//! capture started). They live in a different clock domain than the
//! simulator's modeled/analytic device time; the unified Chrome-trace
//! export keeps the two on separate, labeled tracks.
//!
//! # Determinism contract
//!
//! Wallclock timestamps are inherently nondeterministic, so the contract
//! from the host-parallelism layer ("bit-identical at any thread count")
//! is stated over [`Trace::canonical`]: the span *tree* — names, nesting,
//! fields, order — excluding times. Work executed on pool workers is
//! captured per chunk via [`RegionCapture`] and merged in chunk order,
//! which depends only on the item count, never on which worker ran what.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// What a [`SpanRecord`] represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A duration: opened by [`span`], closed when the guard drops.
    Span,
    /// An instantaneous marker recorded by [`event`].
    Event,
}

/// One recorded span or event.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Span name, e.g. `"stage.quant"`.
    pub name: String,
    /// Duration span or instantaneous event.
    pub kind: SpanKind,
    /// Nesting depth at open time (0 = top level of the capture).
    pub depth: u32,
    /// Wallclock start, nanoseconds since the capture began.
    pub start_ns: u64,
    /// Wallclock duration in nanoseconds (0 for events).
    pub dur_ns: u64,
    /// `key=value` fields attached via [`Span::field`] / [`EventMark::field`].
    pub fields: Vec<(&'static str, String)>,
}

/// A completed capture: every record of the window, pre-order (a span
/// precedes its children), pool-worker records merged in chunk order.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// The records, in deterministic order.
    pub records: Vec<SpanRecord>,
}

impl Trace {
    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The deterministic serialization of the span tree: indentation by
    /// depth, name, `key=value` fields, events marked with `@`. Times and
    /// worker identities are deliberately excluded — this is the byte
    /// string the determinism contract ("identical at any thread count")
    /// is stated over.
    pub fn canonical(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            for _ in 0..r.depth {
                out.push_str("  ");
            }
            if r.kind == SpanKind::Event {
                out.push('@');
            }
            out.push_str(&r.name);
            for (k, v) in &r.fields {
                out.push(' ');
                out.push_str(k);
                out.push('=');
                out.push_str(v);
            }
            out.push('\n');
        }
        out
    }
}

struct Frames {
    records: Vec<SpanRecord>,
    stack: Vec<usize>,
}

impl Frames {
    const fn new() -> Self {
        Frames { records: Vec::new(), stack: Vec::new() }
    }
}

thread_local! {
    static FRAMES: RefCell<Frames> = const { RefCell::new(Frames::new()) };
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static CAPTURE_START_NS: AtomicU64 = AtomicU64::new(0);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

fn rel_now_ns() -> u64 {
    now_ns().saturating_sub(CAPTURE_START_NS.load(Ordering::Relaxed))
}

/// True while a capture window is open. Instrumentation sites may use
/// this to skip building expensive field values.
pub fn is_capturing() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Open a capture window on the calling thread, discarding any previous
/// buffer. One window is active per process; captures are not reentrant.
pub fn begin_capture() {
    let _ = epoch();
    FRAMES.with(|f| {
        let mut f = f.borrow_mut();
        f.records.clear();
        f.stack.clear();
    });
    CAPTURE_START_NS.store(now_ns(), Ordering::Relaxed);
    ACTIVE.store(true, Ordering::Release);
}

/// Close the capture window and return everything recorded on the calling
/// thread (which, via [`RegionCapture`], includes merged worker records).
pub fn end_capture() -> Trace {
    ACTIVE.store(false, Ordering::Release);
    FRAMES.with(|f| {
        let mut f = f.borrow_mut();
        f.stack.clear();
        Trace { records: std::mem::take(&mut f.records) }
    })
}

const INACTIVE: usize = usize::MAX;

fn add_field(idx: usize, key: &'static str, value: String) {
    FRAMES.with(|f| {
        if let Some(r) = f.borrow_mut().records.get_mut(idx) {
            r.fields.push((key, value));
        }
    });
}

/// RAII guard for an open span; the span closes when this drops.
#[must_use = "dropping the guard immediately closes the span"]
pub struct Span {
    idx: usize,
}

/// Open a span. A no-op (and allocation-free) outside a capture window.
pub fn span(name: &str) -> Span {
    if !is_capturing() {
        return Span { idx: INACTIVE };
    }
    let start_ns = rel_now_ns();
    FRAMES.with(|f| {
        let mut f = f.borrow_mut();
        let idx = f.records.len();
        let depth = f.stack.len() as u32;
        f.records.push(SpanRecord {
            name: name.to_string(),
            kind: SpanKind::Span,
            depth,
            start_ns,
            dur_ns: 0,
            fields: Vec::new(),
        });
        f.stack.push(idx);
        Span { idx }
    })
}

impl Span {
    /// Attach a `key=value` field. Chainable; values are rendered with
    /// `Display` so keep them deterministic (no addresses, no clocks).
    pub fn field(self, key: &'static str, value: impl std::fmt::Display) -> Self {
        if self.idx != INACTIVE {
            add_field(self.idx, key, value.to_string());
        }
        self
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.idx == INACTIVE {
            return;
        }
        let end_ns = rel_now_ns();
        FRAMES.with(|f| {
            let mut f = f.borrow_mut();
            // The guard may outlive its buffer (capture ended, or a region
            // swap happened mid-span); only close if we are still the top
            // of the stack we were pushed onto.
            if f.stack.last() == Some(&self.idx) {
                f.stack.pop();
                if let Some(r) = f.records.get_mut(self.idx) {
                    r.dur_ns = end_ns.saturating_sub(r.start_ns);
                }
            }
        });
    }
}

/// Handle for attaching fields to a just-recorded event. Not a guard —
/// the event is already complete.
pub struct EventMark {
    idx: usize,
}

impl EventMark {
    /// Attach a `key=value` field. Chainable.
    pub fn field(self, key: &'static str, value: impl std::fmt::Display) -> Self {
        if self.idx != INACTIVE {
            add_field(self.idx, key, value.to_string());
        }
        self
    }
}

/// Record an instantaneous event at the current depth. A no-op outside a
/// capture window.
pub fn event(name: &str) -> EventMark {
    if !is_capturing() {
        return EventMark { idx: INACTIVE };
    }
    let start_ns = rel_now_ns();
    FRAMES.with(|f| {
        let mut f = f.borrow_mut();
        let idx = f.records.len();
        let depth = f.stack.len() as u32;
        f.records.push(SpanRecord {
            name: name.to_string(),
            kind: SpanKind::Event,
            depth,
            start_ns,
            dur_ns: 0,
            fields: Vec::new(),
        });
        EventMark { idx }
    })
}

/// Per-chunk span capture for pool regions, implementing the deterministic
/// merge rule.
///
/// The thread pool creates one `RegionCapture` per parallel region. Each
/// chunk body runs inside [`RegionCapture::run`], which redirects the
/// executing thread's span buffer into a slot indexed by *chunk* (not
/// worker). After the region completes, [`RegionCapture::merge`] appends
/// every chunk's records — in chunk order — to the submitting thread's
/// buffer, re-based under its current nesting depth. Chunk grids are a
/// pure function of item count, so the merged record sequence is identical
/// whether the region ran inline, on one worker, or on sixteen.
pub struct RegionCapture {
    slots: Option<Mutex<Vec<Option<Vec<SpanRecord>>>>>,
}

impl RegionCapture {
    /// Set up capture for a region of `n_chunks` chunks. Free when no
    /// capture window is open.
    pub fn new(n_chunks: usize) -> Self {
        if is_capturing() {
            RegionCapture { slots: Some(Mutex::new((0..n_chunks).map(|_| None).collect())) }
        } else {
            RegionCapture { slots: None }
        }
    }

    /// Run one chunk body with its spans redirected into slot `chunk`.
    /// Panic-safe: records captured before a panic are still stored and
    /// the thread's own buffer is always restored.
    pub fn run<R>(&self, chunk: usize, f: impl FnOnce() -> R) -> R {
        let Some(slots) = &self.slots else {
            return f();
        };
        struct Restore<'a> {
            saved: Option<Frames>,
            slots: &'a Mutex<Vec<Option<Vec<SpanRecord>>>>,
            chunk: usize,
        }
        impl Drop for Restore<'_> {
            fn drop(&mut self) {
                let captured = FRAMES
                    .with(|f| std::mem::replace(&mut *f.borrow_mut(), self.saved.take().unwrap()));
                let mut slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
                if let Some(slot) = slots.get_mut(self.chunk) {
                    *slot = Some(captured.records);
                }
            }
        }
        let saved = FRAMES.with(|f| std::mem::replace(&mut *f.borrow_mut(), Frames::new()));
        let _restore = Restore { saved: Some(saved), slots, chunk };
        f()
    }

    /// Append all captured chunk records, in chunk order, to the calling
    /// thread's buffer at its current depth. Call once, from the region's
    /// submitting thread, after all chunks finished.
    pub fn merge(&self) {
        let Some(slots) = &self.slots else {
            return;
        };
        let mut slots = slots.lock().unwrap_or_else(|e| e.into_inner());
        FRAMES.with(|f| {
            let mut f = f.borrow_mut();
            let base_depth = f.stack.len() as u32;
            for slot in slots.iter_mut() {
                for mut r in slot.take().into_iter().flatten() {
                    r.depth += base_depth;
                    f.records.push(r);
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Span state is process-global; serialize the tests that open windows.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn spans_nest_and_carry_fields() {
        let _g = lock();
        begin_capture();
        {
            let _a = span("outer").field("n", 3);
            let _b = span("inner");
            event("tick").field("i", 7);
        }
        let t = end_capture();
        assert_eq!(t.canonical(), "outer n=3\n  inner\n    @tick i=7\n");
        assert_eq!(t.records[0].kind, SpanKind::Span);
        assert_eq!(t.records[2].kind, SpanKind::Event);
        assert!(t.records[1].start_ns >= t.records[0].start_ns);
    }

    #[test]
    fn noop_outside_capture_window() {
        let _g = lock();
        assert!(!is_capturing());
        let _s = span("ignored").field("k", 1);
        event("also-ignored");
        begin_capture();
        let t = end_capture();
        assert!(t.is_empty());
    }

    #[test]
    fn region_capture_merges_in_chunk_order() {
        let _g = lock();
        begin_capture();
        let _root = span("region");
        let rc = RegionCapture::new(3);
        // Run chunks out of order, as a racing pool would.
        for chunk in [2usize, 0, 1] {
            rc.run(chunk, || {
                let _s = span("chunk").field("i", chunk);
            });
        }
        rc.merge();
        drop(_root);
        let t = end_capture();
        assert_eq!(t.canonical(), "region\n  chunk i=0\n  chunk i=1\n  chunk i=2\n");
    }

    #[test]
    fn region_capture_is_transparent_when_inactive() {
        let _g = lock();
        let rc = RegionCapture::new(4);
        let mut acc = 0;
        for c in 0..4 {
            acc += rc.run(c, || c * 2);
        }
        rc.merge();
        assert_eq!(acc, 12);
    }

    #[test]
    fn region_capture_survives_chunk_panics() {
        let _g = lock();
        begin_capture();
        let rc = RegionCapture::new(2);
        rc.run(0, || {
            let _s = span("ok");
        });
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            rc.run(1, || {
                let _s = span("doomed");
                panic!("chunk failure");
            })
        }));
        assert!(r.is_err());
        rc.merge();
        let t = end_capture();
        // Both chunks' records survive; the submitting thread's buffer is intact.
        assert_eq!(t.canonical(), "ok\ndoomed\n");
    }
}
