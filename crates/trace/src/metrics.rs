//! Global metrics registry: counters, gauges, and histograms with
//! deterministic Prometheus-style text exposition and a JSON export.
//!
//! # Determinism classes
//!
//! Every metric declares a [`Class`]:
//!
//! * [`Class::Det`] — a pure function of the input and pipeline
//!   configuration: bytes in/out, compression ratio, kernel launches,
//!   retries, modeled (analytic) seconds. These are bit-identical at any
//!   thread count and across machines.
//! * [`Class::Wall`] — anything touching real time or scheduling:
//!   measured host durations, pool steals. Excluded from the default
//!   exposition so `fzgpu stats` output is byte-identical across
//!   `FZGPU_THREADS` values; opt in with `include_wall`.
//!
//! Exposition renders families sorted by name (then label set), so output
//! bytes depend only on registry contents, never insertion order.
//!
//! # Naming
//!
//! Workspace metric families follow `fzgpu_<crate>_<noun>` (e.g.
//! `fzgpu_sim_kernel_launches_total`, `fzgpu_serve_retries_total`) and are
//! listed in the help table (see [`help_of`]), which supplies the `# HELP`
//! line emitted ahead of `# TYPE`/`# CLASS` for each known family.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

use crate::json;

/// Determinism class of a metric; see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// Deterministic: identical at any thread count, on any machine.
    Det,
    /// Wallclock/schedule-dependent: excluded from default exposition.
    Wall,
}

impl Class {
    fn label(self) -> &'static str {
        match self {
            Class::Det => "det",
            Class::Wall => "wall",
        }
    }
}

/// Histogram bucket upper bounds, seconds-oriented log scale. Fixed so
/// exposition is stable across runs and versions.
const BUCKETS: [f64; 12] = [1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0, 1e3, 1e4];

#[derive(Debug, Clone)]
struct Hist {
    counts: [u64; BUCKETS.len()],
    sum: f64,
    count: u64,
}

#[derive(Debug, Clone)]
enum MetricValue {
    Counter(u64),
    Gauge(f64),
    Histogram(Box<Hist>),
}

#[derive(Debug, Clone)]
struct Metric {
    class: Class,
    value: MetricValue,
}

impl MetricValue {
    fn type_label(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        }
    }
}

/// Registry key: metric name + rendered label pairs (both sorted-stable).
type Key = (String, String);

fn registry() -> &'static Mutex<BTreeMap<Key, Metric>> {
    static REG: OnceLock<Mutex<BTreeMap<Key, Metric>>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn lock() -> std::sync::MutexGuard<'static, BTreeMap<Key, Metric>> {
    registry().lock().unwrap_or_else(|e| e.into_inner())
}

/// Render label pairs as Prometheus inner text: `k1="v1",k2="v2"`.
/// Empty for no labels. Values escape `\`, `"` and newlines per the
/// exposition format.
fn render_labels(labels: &[(&str, &str)]) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| {
            let escaped = v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n");
            format!("{k}=\"{escaped}\"")
        })
        .collect();
    parts.sort();
    parts.join(",")
}

fn key(name: &str, labels: &[(&str, &str)]) -> Key {
    (name.to_string(), render_labels(labels))
}

/// Add `v` to a monotonically increasing counter.
pub fn counter_add(class: Class, name: &str, labels: &[(&str, &str)], v: u64) {
    let mut reg = lock();
    let m = reg
        .entry(key(name, labels))
        .or_insert_with(|| Metric { class, value: MetricValue::Counter(0) });
    if let MetricValue::Counter(c) = &mut m.value {
        *c += v;
    }
}

/// Set a gauge to `v`.
pub fn gauge_set(class: Class, name: &str, labels: &[(&str, &str)], v: f64) {
    let mut reg = lock();
    let m = reg
        .entry(key(name, labels))
        .or_insert_with(|| Metric { class, value: MetricValue::Gauge(0.0) });
    if let MetricValue::Gauge(g) = &mut m.value {
        *g = v;
    }
}

/// Add `v` to a gauge (accumulating, e.g. modeled seconds).
pub fn gauge_add(class: Class, name: &str, labels: &[(&str, &str)], v: f64) {
    let mut reg = lock();
    let m = reg
        .entry(key(name, labels))
        .or_insert_with(|| Metric { class, value: MetricValue::Gauge(0.0) });
    if let MetricValue::Gauge(g) = &mut m.value {
        *g += v;
    }
}

/// Record an observation into a histogram (fixed log-scale buckets).
pub fn observe(class: Class, name: &str, labels: &[(&str, &str)], v: f64) {
    let mut reg = lock();
    let m = reg.entry(key(name, labels)).or_insert_with(|| Metric {
        class,
        value: MetricValue::Histogram(Box::new(Hist {
            counts: [0; BUCKETS.len()],
            sum: 0.0,
            count: 0,
        })),
    });
    if let MetricValue::Histogram(h) = &mut m.value {
        for (i, bound) in BUCKETS.iter().enumerate() {
            if v <= *bound {
                h.counts[i] += 1;
            }
        }
        h.sum += v;
        h.count += 1;
    }
}

/// Clear the registry. Tests and single-command CLI runs use this to
/// scope metrics to one operation.
pub fn reset() {
    lock().clear();
}

/// Read a counter's value; 0 if absent or not a counter.
pub fn counter_value(name: &str, labels: &[(&str, &str)]) -> u64 {
    match lock().get(&key(name, labels)).map(|m| m.value.clone()) {
        Some(MetricValue::Counter(c)) => c,
        _ => 0,
    }
}

/// Read a gauge's value; 0.0 if absent or not a gauge.
pub fn gauge_value(name: &str, labels: &[(&str, &str)]) -> f64 {
    match lock().get(&key(name, labels)).map(|m| m.value.clone()) {
        Some(MetricValue::Gauge(g)) => g,
        _ => 0.0,
    }
}

fn le_token(bound: f64) -> String {
    format!("{bound:e}")
}

/// Help strings for the workspace's metric families, keyed by full name
/// (sorted). Names follow the `fzgpu_<crate>_<noun>` convention; the
/// table is the authoritative list of registered families. Exposition
/// emits a `# HELP` line only for names found here, so ad-hoc metrics
/// (and test fixtures) render without one.
const HELP: &[(&str, &str)] = &[
    ("fzgpu_core_archive_chunks_total", "Chunks written into multi-field archives."),
    ("fzgpu_core_bytes_in_total", "Uncompressed bytes fed into the compressor."),
    ("fzgpu_core_bytes_out_total", "Compressed bytes produced."),
    ("fzgpu_core_compress_calls_total", "Compression pipeline invocations."),
    ("fzgpu_core_compression_ratio_last", "Compression ratio of the most recent call."),
    ("fzgpu_core_crc_failures_total", "CRC mismatches detected while decoding, by section."),
    ("fzgpu_core_decompress_calls_total", "Decompression pipeline invocations."),
    ("fzgpu_core_host_seconds", "Measured host wall-clock seconds, by op."),
    (
        "fzgpu_core_native_downgrade_total",
        "Native fast-path requests downgraded to the simulated path under fault injection.",
    ),
    ("fzgpu_pool_chunks_total", "Work chunks executed by the thread pool."),
    ("fzgpu_pool_regions_total", "Parallel regions entered on the thread pool."),
    ("fzgpu_pool_steals_total", "Chunks executed by a worker other than the submitter."),
    ("fzgpu_serve_aborted_total", "Jobs aborted mid-flight by a device loss."),
    ("fzgpu_serve_batches_total", "Batches dispatched to the modeled device."),
    ("fzgpu_serve_breaker_reroutes_total", "Dispatches rerouted off a breaker-open stream."),
    ("fzgpu_serve_deadline_missed_total", "Completed jobs that finished past their deadline."),
    ("fzgpu_serve_device_loss_total", "Modeled device-loss faults applied."),
    ("fzgpu_serve_failed_total", "Jobs permanently failed, by reason."),
    ("fzgpu_serve_fused_saved_seconds", "Modeled seconds saved by batch fusion."),
    ("fzgpu_serve_host_seconds", "Measured host wall-clock seconds spent serving."),
    ("fzgpu_serve_jobs_total", "Jobs completed, by op."),
    ("fzgpu_serve_makespan_seconds", "Modeled makespan of the serviced workload."),
    ("fzgpu_serve_rejected_total", "Jobs rejected at admission (queue full)."),
    ("fzgpu_serve_retries_total", "Job retry attempts scheduled."),
    ("fzgpu_serve_shed_total", "Jobs shed by admission control, by reason."),
    ("fzgpu_serve_stalls_total", "Injected stream stalls."),
    ("fzgpu_sim_d2h_bytes_total", "Bytes copied device-to-host in the modeled pipeline."),
    ("fzgpu_sim_h2d_bytes_total", "Bytes copied host-to-device in the modeled pipeline."),
    ("fzgpu_sim_kernel_launches_total", "Modeled kernel launches."),
    ("fzgpu_sim_kernel_seconds_total", "Modeled kernel-execution seconds."),
    ("fzgpu_sim_launch_retries_total", "Modeled kernel launches retried after a transient fault."),
    (
        "fzgpu_sim_mempool_frag_misses_total",
        "Pool misses caused by fragmentation rather than capacity.",
    ),
    ("fzgpu_sim_mempool_high_water_bytes", "High-water mark of live pool bytes."),
    ("fzgpu_sim_mempool_hits_total", "Device memory pool allocations served from the free list."),
    ("fzgpu_sim_mempool_misses_total", "Device memory pool allocations that grew the pool."),
    ("fzgpu_sim_mempool_releases_total", "Chunks returned to the pool free list."),
    ("fzgpu_sim_transfer_seconds_total", "Modeled PCIe transfer seconds, both directions."),
    ("fzgpu_store_backend_reads_total", "Storage backend range-read requests, by backend kind."),
    ("fzgpu_store_backend_writes_total", "Storage backend object writes, by backend kind."),
    ("fzgpu_store_bytes_read_total", "Bytes fetched from storage backends, by backend kind."),
    ("fzgpu_store_bytes_written_total", "Bytes written to storage backends, by backend kind."),
    ("fzgpu_store_chunks_decoded_total", "Chunks decoded by store region reads."),
    ("fzgpu_store_reads_total", "Store region-read requests served."),
    ("fzgpu_store_shards_touched_total", "Shard indexes fetched by store region reads."),
    ("fzgpu_store_values_read_total", "Values returned by store region reads."),
];

/// Help string for a metric family, if it is a registered workspace name.
pub fn help_of(name: &str) -> Option<&'static str> {
    HELP.binary_search_by_key(&name, |(n, _)| n).ok().map(|i| HELP[i].1)
}

/// Prometheus-style text exposition. Deterministic: families sorted by
/// name, then label set. `include_wall = false` (the default surface)
/// emits only [`Class::Det`] metrics, making the bytes identical at any
/// thread count.
pub fn exposition(include_wall: bool) -> String {
    let reg = lock();
    let mut out = String::new();
    let mut last_family = "";
    for ((name, labels), m) in reg.iter() {
        if m.class == Class::Wall && !include_wall {
            continue;
        }
        if name != last_family {
            if let Some(help) = help_of(name) {
                out.push_str(&format!("# HELP {name} {help}\n"));
            }
            out.push_str(&format!(
                "# TYPE {name} {}\n# CLASS {name} {}\n",
                m.value.type_label(),
                m.class.label()
            ));
        }
        match &m.value {
            MetricValue::Counter(c) => {
                out.push_str(&render_sample(name, labels, &c.to_string()));
            }
            MetricValue::Gauge(g) => {
                out.push_str(&render_sample(name, labels, &json::num(*g)));
            }
            MetricValue::Histogram(h) => {
                // Counts are cumulative by construction: `observe`
                // increments every bucket whose bound covers the value.
                for (i, bound) in BUCKETS.iter().enumerate() {
                    let le = le_token(*bound);
                    let with_le = if labels.is_empty() {
                        format!("le=\"{le}\"")
                    } else {
                        format!("{labels},le=\"{le}\"")
                    };
                    out.push_str(&render_sample(
                        &format!("{name}_bucket"),
                        &with_le,
                        &h.counts[i].to_string(),
                    ));
                }
                let inf = if labels.is_empty() {
                    "le=\"+Inf\"".to_string()
                } else {
                    format!("{labels},le=\"+Inf\"")
                };
                out.push_str(&render_sample(&format!("{name}_bucket"), &inf, &h.count.to_string()));
                out.push_str(&render_sample(&format!("{name}_sum"), labels, &json::num(h.sum)));
                out.push_str(&render_sample(
                    &format!("{name}_count"),
                    labels,
                    &h.count.to_string(),
                ));
            }
        }
        last_family = name;
    }
    out
}

fn render_sample(name: &str, labels: &str, value: &str) -> String {
    if labels.is_empty() {
        format!("{name} {value}\n")
    } else {
        format!("{name}{{{labels}}} {value}\n")
    }
}

/// JSON export of the registry: an array of metric objects, same ordering
/// and filtering rules as [`exposition`].
pub fn to_json(include_wall: bool) -> String {
    let reg = lock();
    let mut items = Vec::new();
    for ((name, labels), m) in reg.iter() {
        if m.class == Class::Wall && !include_wall {
            continue;
        }
        let head = format!(
            "{{\"name\":{},\"labels\":{},\"type\":{},\"class\":{}",
            json::escape(name),
            json::escape(labels),
            json::escape(m.value.type_label()),
            json::escape(m.class.label()),
        );
        let body = match &m.value {
            MetricValue::Counter(c) => format!(",\"value\":{c}}}"),
            MetricValue::Gauge(g) => format!(",\"value\":{}}}", json::num(*g)),
            MetricValue::Histogram(h) => {
                let buckets: Vec<String> = BUCKETS
                    .iter()
                    .zip(h.counts.iter())
                    .map(|(b, c)| format!("[{},{c}]", json::num(*b)))
                    .collect();
                format!(
                    ",\"sum\":{},\"count\":{},\"buckets\":[{}]}}",
                    json::num(h.sum),
                    h.count,
                    buckets.join(",")
                )
            }
        };
        items.push(format!("{head}{body}"));
    }
    format!("{{\"metrics\":[{}]}}\n", items.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global; serialize tests that reset it.
    fn gate() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn counters_accumulate_and_expose_sorted() {
        let _g = gate();
        reset();
        counter_add(Class::Det, "zz_total", &[], 1);
        counter_add(Class::Det, "aa_total", &[("op", "x")], 2);
        counter_add(Class::Det, "aa_total", &[("op", "x")], 3);
        let text = exposition(false);
        assert_eq!(
            text,
            "# TYPE aa_total counter\n# CLASS aa_total det\naa_total{op=\"x\"} 5\n\
             # TYPE zz_total counter\n# CLASS zz_total det\nzz_total 1\n"
        );
        assert_eq!(counter_value("aa_total", &[("op", "x")]), 5);
    }

    #[test]
    fn wall_class_hidden_by_default() {
        let _g = gate();
        reset();
        counter_add(Class::Det, "det_total", &[], 1);
        counter_add(Class::Wall, "steals_total", &[], 9);
        let det_only = exposition(false);
        assert!(det_only.contains("det_total"));
        assert!(!det_only.contains("steals_total"));
        let all = exposition(true);
        assert!(all.contains("steals_total 9"));
    }

    #[test]
    fn gauges_set_and_add() {
        let _g = gate();
        reset();
        gauge_set(Class::Det, "ratio", &[], 4.5);
        gauge_set(Class::Det, "ratio", &[], 5.25);
        gauge_add(Class::Det, "seconds", &[], 0.5);
        gauge_add(Class::Det, "seconds", &[], 0.25);
        assert_eq!(gauge_value("ratio", &[]), 5.25);
        assert_eq!(gauge_value("seconds", &[]), 0.75);
        assert!(exposition(false).contains("ratio 5.25\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let _g = gate();
        reset();
        observe(Class::Det, "lat", &[("op", "c")], 5e-7); // <= 1e-6 and up
        observe(Class::Det, "lat", &[("op", "c")], 2.0); // <= 10 and up
        let text = exposition(false);
        assert!(text.contains("# TYPE lat histogram"));
        assert!(text.contains("lat_bucket{op=\"c\",le=\"1e-7\"} 0\n"), "{text}");
        assert!(text.contains("lat_bucket{op=\"c\",le=\"1e-6\"} 1\n"), "{text}");
        assert!(text.contains("lat_bucket{op=\"c\",le=\"1e1\"} 2\n"), "{text}");
        assert!(text.contains("lat_bucket{op=\"c\",le=\"+Inf\"} 2\n"), "{text}");
        assert!(text.contains("lat_sum{op=\"c\"} 2.0000005\n"), "{text}");
        assert!(text.contains("lat_count{op=\"c\"} 2\n"), "{text}");
    }

    #[test]
    fn json_export_parses_back() {
        let _g = gate();
        reset();
        counter_add(Class::Det, "bytes_total", &[("dir", "in")], 1024);
        observe(Class::Det, "lat", &[], 0.5);
        let doc = crate::json::parse(&to_json(false)).unwrap();
        let metrics = doc.get("metrics").and_then(crate::json::Value::as_array).unwrap();
        assert_eq!(metrics.len(), 2);
        assert_eq!(
            metrics[0].get("name").and_then(crate::json::Value::as_str),
            Some("bytes_total")
        );
        assert_eq!(metrics[0].get("value").and_then(crate::json::Value::as_f64), Some(1024.0));
        assert_eq!(metrics[1].get("count").and_then(crate::json::Value::as_f64), Some(1.0));
    }

    #[test]
    fn help_table_is_sorted_and_emitted() {
        let _g = gate();
        for w in HELP.windows(2) {
            assert!(w[0].0 < w[1].0, "HELP table must stay sorted: {} >= {}", w[0].0, w[1].0);
        }
        reset();
        counter_add(Class::Det, "fzgpu_sim_kernel_launches_total", &[], 3);
        counter_add(Class::Det, "unknown_total", &[], 1);
        let text = exposition(false);
        assert!(
            text.contains(
                "# HELP fzgpu_sim_kernel_launches_total Modeled kernel launches.\n\
                 # TYPE fzgpu_sim_kernel_launches_total counter\n"
            ),
            "{text}"
        );
        assert!(!text.contains("# HELP unknown_total"), "{text}");
    }

    #[test]
    fn label_values_are_escaped() {
        let _g = gate();
        reset();
        counter_add(Class::Det, "c_total", &[("k", "a\"b\\c")], 1);
        let text = exposition(false);
        assert!(text.contains("c_total{k=\"a\\\"b\\\\c\"} 1\n"), "{text}");
    }
}
