//! Shared hand-rolled JSON helpers: the one escaping routine every writer
//! in the workspace uses, a round-trippable number formatter, and a small
//! recursive-descent parser for reading the JSON we (or tools) wrote back.
//!
//! The workspace is dependency-free, so several crates emit JSON by string
//! concatenation. Before this module each had its own escaper (or none);
//! hostile names — quotes, backslashes, control characters — could break
//! the output. Everything now funnels through [`escape`].

use std::collections::BTreeMap;

/// Render `s` as a quoted JSON string literal with all required escapes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON number literal: finite `f64` only (JSON has no NaN/Infinity).
///
/// `{:?}` prints enough digits to round-trip and always includes a decimal
/// point or exponent, keeping the token a JSON number, never an integer
/// that silently loses its float-ness on reparse.
pub fn num(v: f64) -> String {
    debug_assert!(v.is_finite(), "non-finite value {v} reached a JSON writer");
    let v = if v.is_finite() { v } else { 0.0 };
    format!("{v:?}")
}

/// A parsed JSON value. Numbers are kept as `f64` (sufficient for every
/// figure in the bench baselines; exact integers survive to 2^53).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number token.
    Num(f64),
    /// A string with escapes resolved.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. `BTreeMap` so traversal order is deterministic.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Object field lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse a complete JSON document. Errors carry a byte offset.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes.get(self.pos).copied().ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Value::Str(self.string()?)),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'n' => self.literal("null", Value::Null),
            _ => self.number(),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            map.insert(key, self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos).copied() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos).copied() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            // Surrogates don't appear in our writers; map them
                            // to the replacement char instead of failing.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: take the full scalar.
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().ok_or("empty tail")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        self.skip_ws();
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        let tok = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        tok.parse::<f64>().map(Value::Num).map_err(|_| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_hostile_strings() {
        assert_eq!(escape("plain"), "\"plain\"");
        assert_eq!(escape("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(escape("\t\r\u{1}"), "\"\\t\\r\\u0001\"");
    }

    #[test]
    fn num_round_trips() {
        assert_eq!(num(1.5), "1.5");
        assert_eq!(num(0.0), "0.0");
        // Integral values keep a decimal point so the token stays a float.
        assert_eq!(num(3.0), "3.0");
        assert_eq!(num(1e-7).parse::<f64>().unwrap(), 1e-7);
    }

    #[test]
    fn escaped_strings_parse_back_verbatim() {
        let hostile = "evil \"name\"\\ with\nnewline\tand \u{1} ctrl, ünïcode";
        let doc = format!("{{\"k\":{}}}", escape(hostile));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").and_then(Value::as_str), Some(hostile));
    }

    #[test]
    fn parser_handles_nested_documents() {
        let v = parse(r#"{"a":[1,2.5,-3e-2],"b":{"c":true,"d":null},"e":"s"}"#).unwrap();
        let arr = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[2].as_f64(), Some(-0.03));
        assert_eq!(v.get("b").and_then(|b| b.get("c")), Some(&Value::Bool(true)));
        assert_eq!(v.get("b").and_then(|b| b.get("d")), Some(&Value::Null));
        assert_eq!(v.get("e").and_then(Value::as_str), Some("s"));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{}extra").is_err());
        assert!(parse("\"unterminated").is_err());
    }
}
