//! Chrome Trace Event Format builder (`chrome://tracing`, Perfetto).
//!
//! Hand-rolled like the rest of the workspace's JSON, but built once here
//! so every exporter shares the same escaping ([`crate::json::escape`])
//! and the same top-level document shape. Tracks are (pid, tid) pairs;
//! name them with [`ChromeTrace::process_name`] / [`ChromeTrace::thread_name`]
//! metadata events so viewers label them.

use crate::json;

/// Incremental builder for one trace document.
#[derive(Debug, Default)]
pub struct ChromeTrace {
    events: Vec<String>,
}

impl ChromeTrace {
    /// An empty trace.
    pub fn new() -> Self {
        ChromeTrace::default()
    }

    /// Label a process track (`process_name` metadata event).
    pub fn process_name(&mut self, pid: u32, name: &str) {
        self.events.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"args\":{{\"name\":{}}}}}",
            json::escape(name)
        ));
    }

    /// Label a thread track (`thread_name` metadata event).
    pub fn thread_name(&mut self, pid: u32, tid: u32, name: &str) {
        self.events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":{}}}}}",
            json::escape(name)
        ));
    }

    /// A complete (`"X"`) event: a slice from `ts_us` lasting `dur_us`
    /// microseconds. `args` values must be pre-rendered JSON tokens
    /// (use [`json::escape`] / [`json::num`] or integer `to_string`).
    #[allow(clippy::too_many_arguments)]
    pub fn complete(
        &mut self,
        pid: u32,
        tid: u32,
        name: &str,
        cat: &str,
        ts_us: f64,
        dur_us: f64,
        args: &[(&str, String)],
    ) {
        self.events.push(format!(
            "{{\"name\":{},\"cat\":{},\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{pid},\"tid\":{tid},\"args\":{{{}}}}}",
            json::escape(name),
            json::escape(cat),
            json::num(ts_us),
            json::num(dur_us),
            render_args(args),
        ));
    }

    /// An instant (`"i"`) event at `ts_us`, thread-scoped.
    pub fn instant(
        &mut self,
        pid: u32,
        tid: u32,
        name: &str,
        cat: &str,
        ts_us: f64,
        args: &[(&str, String)],
    ) {
        self.events.push(format!(
            "{{\"name\":{},\"cat\":{},\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":{pid},\"tid\":{tid},\"args\":{{{}}}}}",
            json::escape(name),
            json::escape(cat),
            json::num(ts_us),
            render_args(args),
        ));
    }

    /// Number of events queued so far (metadata included).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events were queued.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Render the document. `other_data` values must be pre-rendered JSON
    /// tokens; they land in the `otherData` object.
    pub fn finish(self, other_data: &[(&str, String)]) -> String {
        format!(
            "{{\"displayTimeUnit\":\"ms\",\"otherData\":{{{}}},\"traceEvents\":[{}]}}",
            render_args(other_data),
            self.events.join(",")
        )
    }
}

fn render_args(args: &[(&str, String)]) -> String {
    args.iter().map(|(k, v)| format!("{}:{}", json::escape(k), v)).collect::<Vec<_>>().join(",")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Value};

    #[test]
    fn document_round_trips_through_the_parser() {
        let mut t = ChromeTrace::new();
        t.process_name(0, "modeled device");
        t.thread_name(0, 1, "transfers");
        t.complete(0, 1, "H2D \"hostile\"", "transfer", 0.0, 2.5, &[("bytes", "1024".into())]);
        t.instant(1, 0, "retry", "host", 3.0, &[("attempt", "1".into())]);
        assert_eq!(t.len(), 4);
        let doc = parse(&t.finish(&[("device", json::escape("A100"))])).unwrap();
        assert_eq!(
            doc.get("otherData").and_then(|o| o.get("device")).and_then(Value::as_str),
            Some("A100")
        );
        let events = doc.get("traceEvents").and_then(Value::as_array).unwrap();
        assert_eq!(events.len(), 4);
        assert_eq!(events[2].get("name").and_then(Value::as_str), Some("H2D \"hostile\""));
        assert_eq!(events[2].get("dur").and_then(Value::as_f64), Some(2.5));
        assert_eq!(events[3].get("ph").and_then(Value::as_str), Some("i"));
    }
}
