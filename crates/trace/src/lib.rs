//! `fzgpu-trace`: dependency-free structured tracing + metrics for the
//! FZ-GPU workspace.
//!
//! Three pieces, shared by the simulator, the core pipeline, the thread
//! pool, the CLI, and the bench harness:
//!
//! * **Spans** ([`span`], [`event`], [`begin_capture`]/[`end_capture`],
//!   [`RegionCapture`]) — RAII host-side spans in real wallclock time,
//!   merged across pool workers in deterministic chunk order.
//! * **Metrics** ([`metrics`]) — a global registry of counters, gauges and
//!   histograms split into deterministic and wallclock classes, with
//!   Prometheus-style text exposition and JSON export.
//! * **Telemetry** ([`telemetry`]) — deterministic windowed histograms,
//!   a versioned structured event log, SLO burn-rate tracking, and a
//!   bounded flight recorder, all keyed on modeled time.
//! * **Writers** ([`json`], [`chrome`]) — the one JSON escaping helper
//!   every hand-rolled writer uses, a small parser for reading baselines
//!   back, and a Chrome Trace Event Format builder.
//!
//! The clock-domain convention: host spans carry *real* time, simulator
//! records carry *modeled/analytic* time. They are never mixed on one
//! track; the unified exporter in `fzgpu-sim` labels them separately.

#![warn(missing_docs)]

pub mod chrome;
pub mod json;
pub mod metrics;
mod span;
pub mod telemetry;

pub use span::{
    begin_capture, end_capture, event, is_capturing, span, EventMark, RegionCapture, Span,
    SpanKind, SpanRecord, Trace,
};
