//! Deterministic service telemetry primitives: log-bucketed histograms,
//! windowed time series, a versioned structured event log, SLO burn-rate
//! tracking, and a bounded flight recorder.
//!
//! Everything in this module is keyed on **modeled (Det-class) time** and
//! built from exactly-mergeable integer state, so two replays of the same
//! workload — at any host thread count, on either sim engine — produce
//! byte-identical telemetry:
//!
//! * [`LogHist`] — an HDR-style histogram with *fixed* bucket boundaries
//!   derived from the f64 bit pattern (4 sub-buckets per power of two).
//!   Counts are `u64`, so merging two histograms is an exact integer sum
//!   with no float accumulation order to worry about.
//! * [`WindowedRegistry`] — per-window series of histograms and counters,
//!   keyed by `floor(t / window)`. Observations are keyed adds into a
//!   `BTreeMap`, so insertion order never matters.
//! * [`Event`] / [`EventLog`] — schema-v1 JSONL events carrying a modeled
//!   timestamp, a monotone sequence number, and optional job/stream/span
//!   linkage into the Chrome traces.
//! * [`BurnTracker`] — sliding-window SLO burn-rate computation over a
//!   sorted outcome stream, with upward-crossing alert semantics.
//! * [`FlightRecorder`] — a bounded ring of the most recent events,
//!   snapshotted into an incident dump whenever an alert fires.

use std::collections::{BTreeMap, VecDeque};

use crate::json;

/// Telemetry schema version stamped into every serialized artifact.
pub const SCHEMA_VERSION: u32 = 1;

// ---------------------------------------------------------------------------
// Log-bucketed histogram
// ---------------------------------------------------------------------------

/// Smallest bucketed exponent: values below `2^HIST_E_MIN` (≈ 1 ns when the
/// unit is seconds) land in bucket 0.
pub const HIST_E_MIN: i64 = -30;
/// Largest bucketed exponent: values at or above `2^HIST_E_MAX` (≈ 17 min)
/// land in the final bucket.
pub const HIST_E_MAX: i64 = 10;
/// Sub-buckets per power of two (top two mantissa bits).
pub const HIST_SUBDIV: usize = 4;
/// Total bucket count.
pub const HIST_BUCKETS: usize = ((HIST_E_MAX - HIST_E_MIN) as usize) * HIST_SUBDIV;

/// Bucket index for a value: exponent plus the top two mantissa bits, read
/// straight off the f64 bit pattern. Bucket boundaries are therefore exact
/// binary numbers (`2^e * (1 + s/4)`), identical on every platform, and a
/// merged histogram is an elementwise `u64` sum.
pub fn hist_bucket(v: f64) -> usize {
    // NaN and everything <= 0 land in bucket 0.
    if v.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        return 0;
    }
    let bits = v.to_bits();
    let exp = ((bits >> 52) & 0x7ff) as i64 - 1023;
    let sub = ((bits >> 50) & 0x3) as i64;
    let idx = (exp - HIST_E_MIN) * HIST_SUBDIV as i64 + sub;
    idx.clamp(0, HIST_BUCKETS as i64 - 1) as usize
}

/// Exclusive upper bound of a bucket (the smallest value that lands in the
/// *next* bucket). Quantile queries report this bound, so they are
/// conservative: the true sample is strictly below the reported value.
pub fn hist_bucket_upper(idx: usize) -> f64 {
    let idx = idx.min(HIST_BUCKETS - 1);
    let exp = HIST_E_MIN + (idx / HIST_SUBDIV) as i64;
    let sub = (idx % HIST_SUBDIV) as f64;
    (2f64).powi(exp as i32) * (1.0 + (sub + 1.0) / HIST_SUBDIV as f64)
}

/// Fixed-boundary log-bucketed histogram with `u64` counts.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LogHist {
    counts: BTreeMap<u32, u64>,
    total: u64,
}

impl LogHist {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation.
    pub fn observe(&mut self, v: f64) {
        *self.counts.entry(hist_bucket(v) as u32).or_insert(0) += 1;
        self.total += 1;
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Merge another histogram in: an exact elementwise `u64` sum.
    pub fn merge(&mut self, other: &LogHist) {
        for (&b, &c) in &other.counts {
            *self.counts.entry(b).or_insert(0) += c;
        }
        self.total += other.total;
    }

    /// Nearest-rank quantile, reported as the bucket's upper bound (see
    /// [`hist_bucket_upper`]). Returns 0.0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let rank = ((q * self.total as f64) - 1e-9).ceil().max(1.0) as u64;
        let rank = rank.min(self.total);
        let mut seen = 0u64;
        for (&b, &c) in &self.counts {
            seen += c;
            if seen >= rank {
                return hist_bucket_upper(b as usize);
            }
        }
        hist_bucket_upper(HIST_BUCKETS - 1)
    }

    /// Sparse `(bucket, count)` pairs in bucket order.
    pub fn buckets(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.counts.iter().map(|(&b, &c)| (b, c))
    }

    /// Sparse JSON rendering: `[[bucket,count],...]` in bucket order.
    pub fn to_json(&self) -> String {
        let pairs: Vec<String> = self.counts.iter().map(|(&b, &c)| format!("[{b},{c}]")).collect();
        format!("[{}]", pairs.join(","))
    }
}

// ---------------------------------------------------------------------------
// Windowed registry
// ---------------------------------------------------------------------------

/// Series key: metric name plus a pre-rendered, sorted label string.
type SeriesKey = (String, String);

/// Render a label set deterministically (`k=v,k2=v2`, sorted by key).
pub fn render_labels(labels: &[(&str, &str)]) -> String {
    let mut pairs: Vec<String> = labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
    pairs.sort();
    pairs.join(",")
}

/// Per-window time series of histograms and counters, keyed on modeled
/// time. Window `w` covers `[w*width, (w+1)*width)` seconds.
#[derive(Debug, Clone)]
pub struct WindowedRegistry {
    width: f64,
    hists: BTreeMap<SeriesKey, BTreeMap<u64, LogHist>>,
    counters: BTreeMap<SeriesKey, BTreeMap<u64, u64>>,
}

impl WindowedRegistry {
    /// New registry with the given window width in modeled seconds.
    pub fn new(width: f64) -> Self {
        assert!(width > 0.0, "window width must be positive");
        Self { width, hists: BTreeMap::new(), counters: BTreeMap::new() }
    }

    /// Window width in seconds.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Window index holding modeled time `t`.
    pub fn window_of(&self, t: f64) -> u64 {
        if t <= 0.0 {
            return 0;
        }
        (t / self.width).floor() as u64
    }

    /// Record a histogram observation at modeled time `t`.
    pub fn observe(&mut self, name: &str, labels: &[(&str, &str)], t: f64, v: f64) {
        let key = (name.to_string(), render_labels(labels));
        let w = self.window_of(t);
        self.hists.entry(key).or_default().entry(w).or_default().observe(v);
    }

    /// Add to a windowed counter at modeled time `t`.
    pub fn add(&mut self, name: &str, labels: &[(&str, &str)], t: f64, delta: u64) {
        if delta == 0 {
            return;
        }
        let key = (name.to_string(), render_labels(labels));
        let w = self.window_of(t);
        *self.counters.entry(key).or_default().entry(w).or_insert(0) += delta;
    }

    /// Number of distinct series (histogram + counter families).
    pub fn series_count(&self) -> usize {
        self.hists.len() + self.counters.len()
    }

    /// Highest populated window index, if any observation was recorded.
    pub fn last_window(&self) -> Option<u64> {
        let h = self.hists.values().filter_map(|w| w.keys().next_back()).max();
        let c = self.counters.values().filter_map(|w| w.keys().next_back()).max();
        match (h, c) {
            (Some(a), Some(b)) => Some(*a.max(b)),
            (Some(a), None) => Some(*a),
            (None, Some(b)) => Some(*b),
            (None, None) => None,
        }
    }

    /// Iterate histogram series: `(name, labels, windows)`.
    pub fn hist_series(&self) -> impl Iterator<Item = (&str, &str, &BTreeMap<u64, LogHist>)> + '_ {
        self.hists.iter().map(|((n, l), w)| (n.as_str(), l.as_str(), w))
    }

    /// Iterate counter series: `(name, labels, windows)`.
    pub fn counter_series(&self) -> impl Iterator<Item = (&str, &str, &BTreeMap<u64, u64>)> + '_ {
        self.counters.iter().map(|((n, l), w)| (n.as_str(), l.as_str(), w))
    }

    /// Deterministic JSON rendering of every series (schema v1).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"v\":{},\"window_us\":{},\"series\":[",
            SCHEMA_VERSION,
            json::num(self.width * 1e6)
        ));
        let mut first = true;
        for ((name, labels), windows) in &self.hists {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\":{},\"labels\":{},\"kind\":\"hist\",\"windows\":[",
                json::escape(name),
                json::escape(labels)
            ));
            let rows: Vec<String> = windows
                .iter()
                .map(|(w, h)| {
                    format!("{{\"w\":{},\"count\":{},\"buckets\":{}}}", w, h.count(), h.to_json())
                })
                .collect();
            out.push_str(&rows.join(","));
            out.push_str("]}");
        }
        for ((name, labels), windows) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\":{},\"labels\":{},\"kind\":\"count\",\"windows\":[",
                json::escape(name),
                json::escape(labels)
            ));
            let rows: Vec<String> =
                windows.iter().map(|(w, c)| format!("{{\"w\":{w},\"value\":{c}}}")).collect();
            out.push_str(&rows.join(","));
            out.push_str("]}");
        }
        out.push_str("]}\n");
        out
    }
}

// ---------------------------------------------------------------------------
// Structured event log (schema v1)
// ---------------------------------------------------------------------------

/// One structured telemetry event (schema v1).
///
/// `t` is modeled seconds; `seq` is the emission order within the run and
/// breaks ties when events share a timestamp. Optional fields tie the
/// event back to a job, a stream, a retry attempt, and a Chrome-trace span
/// name (the `b<N>.*` op family of the batch that carried the job).
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Emission sequence number (assigned by [`EventLog::push`]).
    pub seq: u64,
    /// Modeled timestamp, seconds.
    pub t: f64,
    /// Event kind, e.g. `admit`, `dispatch`, `retry`, `alert.burn_fast`.
    pub kind: String,
    /// Job id, when the event concerns one job.
    pub job: Option<u64>,
    /// Stream index, when the event is tied to a stream.
    pub stream: Option<usize>,
    /// Retry attempt number (0 = first try).
    pub attempt: Option<u32>,
    /// Chrome-trace span linkage (`b<N>` batch op family).
    pub span: Option<String>,
    /// Extra key/value detail, rendered in insertion order.
    pub detail: Vec<(String, String)>,
}

impl Event {
    /// New event of `kind` at modeled time `t` (seq filled in on push).
    pub fn new(kind: &str, t: f64) -> Self {
        Self {
            seq: 0,
            t,
            kind: kind.to_string(),
            job: None,
            stream: None,
            attempt: None,
            span: None,
            detail: Vec::new(),
        }
    }

    /// Attach a job id.
    pub fn job(mut self, id: u64) -> Self {
        self.job = Some(id);
        self
    }

    /// Attach a stream index.
    pub fn stream(mut self, s: usize) -> Self {
        self.stream = Some(s);
        self
    }

    /// Attach a retry attempt number.
    pub fn attempt(mut self, a: u32) -> Self {
        self.attempt = Some(a);
        self
    }

    /// Attach a Chrome-trace span name.
    pub fn span(mut self, s: &str) -> Self {
        self.span = Some(s.to_string());
        self
    }

    /// Attach one detail pair; the value must already be valid JSON
    /// (use [`json::num`] / [`json::escape`]).
    pub fn detail(mut self, key: &str, json_value: String) -> Self {
        self.detail.push((key.to_string(), json_value));
        self
    }

    /// Whether this is an alert event (`alert.*` kind).
    pub fn is_alert(&self) -> bool {
        self.kind.starts_with("alert.")
    }

    /// One JSONL line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"v\":{},\"seq\":{},\"t_us\":{},\"kind\":{}",
            SCHEMA_VERSION,
            self.seq,
            json::num(self.t * 1e6),
            json::escape(&self.kind)
        );
        if let Some(j) = self.job {
            out.push_str(&format!(",\"job\":{j}"));
        }
        if let Some(s) = self.stream {
            out.push_str(&format!(",\"stream\":{s}"));
        }
        if let Some(a) = self.attempt {
            out.push_str(&format!(",\"attempt\":{a}"));
        }
        if let Some(ref s) = self.span {
            out.push_str(&format!(",\"span\":{}", json::escape(s)));
        }
        for (k, v) in &self.detail {
            out.push_str(&format!(",{}:{}", json::escape(k), v));
        }
        out.push('}');
        out
    }
}

/// Append-only event log assigning sequence numbers.
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    events: Vec<Event>,
}

impl EventLog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an event; its `seq` is overwritten with the next number.
    pub fn push(&mut self, mut ev: Event) -> u64 {
        let seq = self.events.len() as u64;
        ev.seq = seq;
        self.events.push(ev);
        seq
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Consume the log, returning events sorted chronologically:
    /// by timestamp, then by emission order for ties.
    pub fn into_sorted(mut self) -> Vec<Event> {
        self.events.sort_by(|a, b| a.t.total_cmp(&b.t).then(a.seq.cmp(&b.seq)));
        self.events
    }

    /// Borrow the events in emission order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }
}

/// Render a slice of events as JSONL (one event per line).
pub fn events_to_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&ev.to_json());
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------------------
// SLO burn-rate tracking
// ---------------------------------------------------------------------------

/// Alerting thresholds for [`BurnTracker`] and the availability/breaker
/// rules layered on top of it by the serving collector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlertConfig {
    /// Success-ratio objective (e.g. 0.999 = 0.1% error budget).
    pub objective: f64,
    /// Fast burn window, modeled seconds.
    pub fast_window: f64,
    /// Fast burn-rate threshold (multiples of the error budget).
    pub fast_burn: f64,
    /// Slow burn window, modeled seconds.
    pub slow_window: f64,
    /// Slow burn-rate threshold.
    pub slow_burn: f64,
    /// Trailing availability floor over the slow window.
    pub availability_floor: f64,
    /// Breaker reroutes within the fast window that count as "open".
    pub breaker_reroutes: u64,
}

impl Default for AlertConfig {
    fn default() -> Self {
        Self {
            objective: 0.999,
            fast_window: 400e-6,
            fast_burn: 10.0,
            slow_window: 2e-3,
            slow_burn: 2.0,
            availability_floor: 0.95,
            breaker_reroutes: 2,
        }
    }
}

/// Sliding-window SLO burn-rate tracker.
///
/// Feed it `(t, good)` outcomes in nondecreasing `t` order; it maintains
/// the bad-fraction over the trailing window and reports the burn rate
/// (bad fraction divided by the error budget `1 - objective`). Alerts use
/// upward-crossing semantics: [`BurnTracker::push`] returns `Some(burn)`
/// only on the observation that takes the rate from below to at-or-above
/// the threshold; it re-arms once the rate falls below again.
#[derive(Debug, Clone)]
pub struct BurnTracker {
    window: f64,
    threshold: f64,
    budget: f64,
    events: VecDeque<(f64, bool)>,
    bad: u64,
    alerting: bool,
}

impl BurnTracker {
    /// New tracker over `window` seconds, firing at `threshold` times the
    /// error budget `1 - objective`.
    pub fn new(objective: f64, window: f64, threshold: f64) -> Self {
        Self {
            window,
            threshold,
            budget: (1.0 - objective).max(1e-12),
            events: VecDeque::new(),
            bad: 0,
            alerting: false,
        }
    }

    /// Record an outcome at time `t`; returns the burn rate when the alert
    /// threshold is newly crossed.
    pub fn push(&mut self, t: f64, good: bool) -> Option<f64> {
        self.events.push_back((t, good));
        if !good {
            self.bad += 1;
        }
        while let Some(&(t0, g0)) = self.events.front() {
            if t0 >= t - self.window {
                break;
            }
            self.events.pop_front();
            if !g0 {
                self.bad -= 1;
            }
        }
        let total = self.events.len() as u64;
        let burn = if total == 0 { 0.0 } else { (self.bad as f64 / total as f64) / self.budget };
        if burn >= self.threshold {
            if !self.alerting {
                self.alerting = true;
                return Some(burn);
            }
        } else {
            self.alerting = false;
        }
        None
    }

    /// Trailing availability (good fraction) over the current window.
    pub fn availability(&self) -> f64 {
        let total = self.events.len() as u64;
        if total == 0 {
            return 1.0;
        }
        (total - self.bad) as f64 / total as f64
    }

    /// Number of outcomes currently inside the window.
    pub fn in_window(&self) -> usize {
        self.events.len()
    }
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

/// One incident dump: the ring contents at the moment an alert fired.
#[derive(Debug, Clone)]
pub struct FlightDump {
    /// `seq` of the alert event that triggered the snapshot.
    pub alert_seq: u64,
    /// Kind of the triggering alert.
    pub alert_kind: String,
    /// Modeled time of the alert.
    pub t: f64,
    /// Ring contents, oldest first (the alert itself is last).
    pub events: Vec<Event>,
}

impl FlightDump {
    /// JSONL rendering: a header line, then one line per event.
    pub fn to_jsonl(&self) -> String {
        let mut out = format!(
            "{{\"v\":{},\"dump\":{},\"alert\":{},\"t_us\":{},\"events\":{}}}\n",
            SCHEMA_VERSION,
            self.alert_seq,
            json::escape(&self.alert_kind),
            json::num(self.t * 1e6),
            self.events.len()
        );
        out.push_str(&events_to_jsonl(&self.events));
        out
    }
}

/// Always-on bounded ring of recent events; snapshots itself whenever it
/// is fed an alert event.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    capacity: usize,
    ring: VecDeque<Event>,
    dumps: Vec<FlightDump>,
}

impl FlightRecorder {
    /// New recorder keeping the last `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Self { capacity: capacity.max(1), ring: VecDeque::new(), dumps: Vec::new() }
    }

    /// Feed one event (in chronological order). Alert events trigger a
    /// snapshot that includes the alert itself as the final entry.
    pub fn note(&mut self, ev: &Event) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(ev.clone());
        if ev.is_alert() {
            self.dumps.push(FlightDump {
                alert_seq: ev.seq,
                alert_kind: ev.kind.clone(),
                t: ev.t,
                events: self.ring.iter().cloned().collect(),
            });
        }
    }

    /// Incident dumps captured so far.
    pub fn dumps(&self) -> &[FlightDump] {
        &self.dumps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_monotone() {
        let mut last = 0.0;
        for i in 0..HIST_BUCKETS {
            let u = hist_bucket_upper(i);
            assert!(u > last, "bucket {i} upper {u} <= {last}");
            last = u;
        }
    }

    #[test]
    fn bucket_of_value_is_below_upper_bound() {
        for &v in &[1e-9, 3.7e-6, 1e-3, 0.25, 1.0, 1.5, 2.0, 123.0] {
            let b = hist_bucket(v);
            assert!(v < hist_bucket_upper(b), "v={v} bucket={b}");
            if b > 0 {
                assert!(v >= hist_bucket_upper(b - 1), "v={v} bucket={b}");
            }
        }
    }

    #[test]
    fn zero_and_negative_land_in_bucket_zero() {
        assert_eq!(hist_bucket(0.0), 0);
        assert_eq!(hist_bucket(-1.0), 0);
        assert_eq!(hist_bucket(f64::NAN), 0);
    }

    #[test]
    fn merge_is_exact_sum() {
        let mut a = LogHist::new();
        let mut b = LogHist::new();
        for i in 1..100 {
            a.observe(i as f64 * 1e-6);
            b.observe(i as f64 * 2e-6);
        }
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.count(), a.count() + b.count());
        let json_ab = {
            let mut m2 = b.clone();
            m2.merge(&a);
            m2.to_json()
        };
        assert_eq!(m.to_json(), json_ab, "merge must be order-independent");
    }

    #[test]
    fn quantile_nearest_rank_on_two_samples() {
        let mut h = LogHist::new();
        h.observe(1e-6);
        h.observe(1e-3);
        // Nearest-rank p50 of 2 samples is the *lower* sample's bucket.
        assert!(h.quantile(0.5) < 2e-6 * 1.5);
        assert!(h.quantile(0.99) > 0.5e-3);
    }

    #[test]
    fn windows_key_on_modeled_time() {
        let mut w = WindowedRegistry::new(100e-6);
        w.observe("lat", &[("stage", "total")], 50e-6, 1e-6);
        w.observe("lat", &[("stage", "total")], 150e-6, 1e-6);
        w.observe("lat", &[("stage", "total")], 160e-6, 2e-6);
        w.add("retries", &[], 250e-6, 1);
        assert_eq!(w.window_of(50e-6), 0);
        assert_eq!(w.window_of(150e-6), 1);
        assert_eq!(w.last_window(), Some(2));
        let json1 = w.to_json();
        // Re-inserting in a different order produces identical bytes.
        let mut w2 = WindowedRegistry::new(100e-6);
        w2.add("retries", &[], 250e-6, 1);
        w2.observe("lat", &[("stage", "total")], 160e-6, 2e-6);
        w2.observe("lat", &[("stage", "total")], 150e-6, 1e-6);
        w2.observe("lat", &[("stage", "total")], 50e-6, 1e-6);
        assert_eq!(json1, w2.to_json());
    }

    #[test]
    fn event_jsonl_roundtrips_through_parser() {
        let mut log = EventLog::new();
        log.push(
            Event::new("complete", 123e-6)
                .job(7)
                .stream(1)
                .attempt(0)
                .span("b3")
                .detail("latency_us", json::num(45.5)),
        );
        let line = log.events()[0].to_json();
        let v = json::parse(&line).expect("event must parse");
        assert_eq!(v.get("kind").and_then(|k| k.as_str()), Some("complete"));
        assert_eq!(v.get("job").and_then(|j| j.as_f64()), Some(7.0));
        assert_eq!(v.get("span").and_then(|s| s.as_str()), Some("b3"));
        assert_eq!(v.get("latency_us").and_then(|l| l.as_f64()), Some(45.5));
    }

    #[test]
    fn burn_tracker_crossing_semantics() {
        // objective 0.9 => budget 0.1; threshold 5 => bad fraction 0.5.
        let mut b = BurnTracker::new(0.9, 1.0, 5.0);
        assert_eq!(b.push(0.0, true), None);
        assert_eq!(b.push(0.1, true), None);
        // 1 bad of 3 = 0.33 burn 3.3: below.
        assert_eq!(b.push(0.2, false), None);
        // 2 bad of 4 = 0.5 burn 5.0: crossing fires once.
        assert!(b.push(0.3, false).is_some());
        assert_eq!(b.push(0.4, false), None, "still above: no re-fire");
        // Window slides: old events expire, rate drops, re-arms.
        for i in 0..20 {
            b.push(2.0 + i as f64 * 0.01, true);
        }
        assert!(b.availability() > 0.99);
        for i in 0..30 {
            let fired = b.push(2.5 + i as f64 * 0.01, false);
            if fired.is_some() {
                return;
            }
        }
        panic!("burn alert should re-fire after re-arming");
    }

    #[test]
    fn flight_recorder_ring_and_dump() {
        let mut fr = FlightRecorder::new(4);
        let mut log = EventLog::new();
        for i in 0..6 {
            log.push(Event::new("admit", i as f64 * 1e-6).job(i));
        }
        log.push(Event::new("alert.burn_fast", 6e-6));
        for ev in log.events() {
            fr.note(ev);
        }
        assert_eq!(fr.dumps().len(), 1);
        let d = &fr.dumps()[0];
        assert_eq!(d.events.len(), 4, "bounded ring");
        assert_eq!(d.events.last().unwrap().kind, "alert.burn_fast");
        assert_eq!(d.events[0].job, Some(3), "oldest two evicted");
    }
}
